"""Stateful session handover between edge sites.

The protocol moves a client's per-session ``sift`` state (the
:class:`~repro.dsp.statestore.StateStore` entries keyed by that client)
from the replica at its old attachment site to one at the new site,
with the steps a real control plane pays for:

1. **WARM** — ensure a replica at the target site (deploying one if
   needed, charging ``warmup_s`` of container start).  The client is
   told the window opened (:class:`HandoverNotice` ``begin``) so it can
   degrade gracefully to local tracking instead of stalling.
2. **TRANSFER** — iterative pre-copy: snapshot the session's entries,
   ship them in chunks over :class:`~repro.net.rpc.RpcChannel` (real
   bytes on the wire, real import CPU at the target, remaining TTL
   preserved), re-snapshot the delta, repeat up to
   ``max_transfer_rounds``.
3. **CUTOVER** — ship the final delta, then atomically: discard the
   moved entries at the source, install a fetch-forwarding tombstone
   there (in-flight fetches chase the state), rebind the
   :class:`SessionDirectory` with a bumped epoch, retire the source
   from upstream credit ledgers (stale grants rejected), and notify the
   client (``commit`` — it resumes sending, stamping the new epoch).
4. **DRAIN** — ``drain_s`` for stragglers; then the record closes.

**Fault recovery** is the headline: a *target* crash or a lost/timed-out
transfer aborts cleanly (nothing was mutated at the source — rollback
is free), notifies the client (``abort``), and retries after a bounded
deterministic backoff up to ``max_attempts`` before abandoning the
handover (the session stays at the source: graceful local fallback).
A *source* crash mid-transfer switches to forward recovery: the target
already holds every shipped chunk, so the session fails over to it and
only the un-shipped entries are counted lost.

``naive=True`` is the kill-and-reconnect baseline the benchmark
compares against: rebind instantly, tear the session state down at the
source (counted, never silent), no transfer, no forwarding, no client
notices.

Everything here runs only when a mobility experiment engages it — no
module-level hooks, no RNG, so mobility-off runs keep their golden
trace digests bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.addresses import Address
from repro.net.datagram import Datagram
from repro.net.rpc import RpcChannel, RpcServer, RpcTimeoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # The client handles HandoverNotice, and the orchestra package
    # (via placement) imports the client — so the coordinator binds to
    # the orchestrator at runtime only, never at import time.
    from repro.orchestra.orchestrator import Orchestrator

#: Wire size of one handover notice (small control packet).
NOTICE_WIRE_BYTES = 96

#: Port offset for per-replica state-transfer endpoints (sidecar RPC
#: uses +10000; keep clear of it).
TRANSFER_PORT_OFFSET = 20000

#: CPU time the target pays to deserialize one imported entry.
IMPORT_TIME_PER_ENTRY_S = 2e-4


class HandoverError(RuntimeError):
    """Raised for handover misuse (unknown client, no session)."""


@dataclass(frozen=True)
class HandoverNotice:
    """Control message to the client bracketing a handover window.

    ``phase`` is ``begin`` (window opens: degrade locally), ``commit``
    (cut over: adopt ``epoch``, resume sending) or ``abort`` (window
    closes, session stays put).  Epoch-stale notices are ignored by
    the client, so reordered control packets cannot roll a session
    backwards.
    """

    client_id: int
    service: str
    epoch: int
    phase: str
    site: str
    sent_s: float


@dataclass(frozen=True)
class _TransferChunk:
    """One chunk of exported state entries on the wire."""

    client_id: int
    generation: int
    entries: tuple
    final: bool


@dataclass
class SessionEntry:
    """Where one client's session lives, and its epoch."""

    instance: object
    epoch: int = 0


class SessionDirectory:
    """client -> serving replica of the stateful service.

    Consulted by upstream services (via ``StreamService.
    session_router``) before the registry's round-robin balancer, so a
    client's frames keep landing on the replica that holds its session
    state.  Falls back to the balancer (returns ``None``) when the
    pinned replica is gone — the normal recovery path.
    """

    def __init__(self, service: str):
        self.service = service
        self._sessions: Dict[int, SessionEntry] = {}

    def bind(self, client_id: int, instance, epoch: int = 0) -> None:
        self._sessions[client_id] = SessionEntry(instance=instance,
                                                 epoch=epoch)

    def entry(self, client_id: int) -> Optional[SessionEntry]:
        return self._sessions.get(client_id)

    def epoch(self, client_id: int) -> int:
        entry = self._sessions.get(client_id)
        return entry.epoch if entry is not None else 0

    def route(self, service: str, client_id: int) -> Optional[Address]:
        """The pinned replica's address, or ``None`` (use balancer)."""
        if service != self.service:
            return None
        entry = self._sessions.get(client_id)
        if entry is None or not entry.instance.is_running():
            return None
        return entry.instance.address


@dataclass(frozen=True)
class HandoverConfig:
    """Knobs of the handover protocol (all deterministic)."""

    #: Container start on a freshly deployed target replica.
    warmup_s: float = 0.5
    #: Straggler window after cutover before the record closes.
    drain_s: float = 0.5
    #: Max payload bytes per transfer chunk.
    chunk_bytes: int = 32 * 1024 * 1024
    #: Serialization overhead per entry on the wire.
    entry_overhead_bytes: int = 256
    #: Pre-copy rounds before the cutover delta ships regardless.
    max_transfer_rounds: int = 3
    #: Guard on each chunk RPC (beyond the RPC's own retransmissions).
    transfer_timeout_s: float = 2.0
    #: Attempts before the handover is abandoned (session stays put).
    max_attempts: int = 3
    #: Deterministic backoff between attempts: ``retry_backoff_s *
    #: backoff_multiplier ** (attempt - 1)`` — bounded, no jitter, so
    #: handover schedules replay bit-identically.
    retry_backoff_s: float = 0.25
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.chunk_bytes <= 0 or self.transfer_timeout_s <= 0:
            raise ValueError("chunk_bytes/transfer_timeout_s must be "
                             "positive")
        if self.warmup_s < 0 or self.drain_s < 0:
            raise ValueError("warmup_s/drain_s must be non-negative")
        if self.retry_backoff_s <= 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be positive and "
                             "non-shrinking")
        if self.max_transfer_rounds < 1:
            raise ValueError("max_transfer_rounds must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        return (self.retry_backoff_s
                * self.backoff_multiplier ** max(0, attempt - 1))


@dataclass
class HandoverRecord:
    """Timeline and accounting of one session handover."""

    client_id: int
    service: str
    from_site: str
    to_site: str
    epoch: int
    started_s: float
    source: str = ""
    target: str = ""
    naive: bool = False
    attempts: int = 0
    rounds: int = 0
    chunks: int = 0
    #: Entries shipped to (and imported at) the target.
    state_entries: int = 0
    state_bytes: float = 0.0
    #: Session entries that died instead of moving (source crashed
    #: mid-transfer, or the naive baseline tore the session down).
    entries_lost: int = 0
    warmed_s: Optional[float] = None
    cutover_s: Optional[float] = None
    completed_s: Optional[float] = None
    #: ``completed`` | ``failed-over`` | ``abandoned`` | ``superseded``
    #: | ``pending``
    outcome: str = "pending"
    abort_reasons: List[str] = field(default_factory=list)

    @property
    def latency_s(self) -> Optional[float]:
        """Window start to cutover — the client-visible outage bound."""
        if self.cutover_s is None:
            return None
        return self.cutover_s - self.started_s

    def as_dict(self) -> dict:
        return {
            "client_id": self.client_id,
            "service": self.service,
            "from_site": self.from_site,
            "to_site": self.to_site,
            "epoch": self.epoch,
            "started_s": self.started_s,
            "source": self.source,
            "target": self.target,
            "naive": self.naive,
            "attempts": self.attempts,
            "rounds": self.rounds,
            "chunks": self.chunks,
            "state_entries": self.state_entries,
            "state_bytes": self.state_bytes,
            "entries_lost": self.entries_lost,
            "warmed_s": self.warmed_s,
            "cutover_s": self.cutover_s,
            "completed_s": self.completed_s,
            "latency_s": self.latency_s,
            "outcome": self.outcome,
            "abort_reasons": list(self.abort_reasons),
        }


class HandoverCoordinator:
    """Runs stateful session handovers on an orchestrated deployment."""

    def __init__(self, orchestrator: "Orchestrator", *,
                 service: str = "sift",
                 config: Optional[HandoverConfig] = None,
                 naive: bool = False):
        self.orchestrator = orchestrator
        self.sim = orchestrator.sim
        self.network = orchestrator.testbed.network
        self.service = service
        self.config = config if config is not None else HandoverConfig()
        self.naive = naive
        self.directory = SessionDirectory(service)
        self.records: List[HandoverRecord] = []
        #: client_id -> ArClient-ish (address + epoch hooks).
        self._clients: Dict[int, object] = {}
        #: Handover generation per client: a newer handover supersedes
        #: any still in flight (its process sees the stale generation
        #: and stands down without touching shared state).
        self._generation: Dict[int, int] = {}
        #: Per-replica state-transfer endpoints (lazily bound).
        self._transfer_servers: Dict[Address, RpcServer] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_client(self, client) -> None:
        """Register a client for notices and epoch bookkeeping."""
        self._clients[client.client_id] = client

    def bind_initial(self, client_id: int, site: str) -> None:
        """Pin a client's session to a replica at ``site`` (epoch 0)."""
        instance = self._ensure_replica(site)
        if instance is None:
            raise HandoverError(
                f"no capacity for {self.service!r} at {site!r}")
        self.directory.bind(client_id, instance, epoch=0)

    def _ensure_replica(self, site: str):
        """A running replica of the service at ``site`` (deploy one if
        none exists).  Returns ``(instance, fresh)``-style instance or
        ``None`` when the scheduler has no capacity there."""
        from repro.orchestra.scheduler import SchedulingError

        for instance in self.orchestrator.instances(self.service):
            if (instance.is_running()
                    and instance.container.machine.name == site):
                return instance
        try:
            return self.orchestrator.scale_up(self.service, machine=site)
        except SchedulingError:
            return None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def handover_session(self, client_id: int,
                         to_site: str) -> HandoverRecord:
        """Begin moving ``client_id``'s session to ``to_site``.

        Returns the live-updated :class:`HandoverRecord`; the protocol
        itself runs as a simulation process.  A handover already in
        flight for the client is superseded.
        """
        entry = self.directory.entry(client_id)
        if entry is None:
            raise HandoverError(f"client {client_id} has no session")
        source = entry.instance
        from_site = source.container.machine.name
        record = HandoverRecord(
            client_id=client_id, service=self.service,
            from_site=from_site, to_site=to_site,
            epoch=entry.epoch + 1, started_s=self.sim.now,
            source=str(source.address), naive=self.naive)
        self.records.append(record)
        generation = self._generation.get(client_id, 0) + 1
        self._generation[client_id] = generation
        if to_site == from_site and source.is_running():
            record.outcome = "completed"
            record.cutover_s = record.completed_s = self.sim.now
            return record
        runner = (self._run_naive if self.naive else self._run)
        self.sim.spawn(runner(client_id, to_site, record, generation),
                       name=f"handover-{self.service}-c{client_id}")
        return record

    # ------------------------------------------------------------------
    # The stateful protocol
    # ------------------------------------------------------------------
    def _superseded(self, client_id: int, generation: int) -> bool:
        return self._generation.get(client_id) != generation

    def _run(self, client_id: int, to_site: str,
             record: HandoverRecord, generation: int):
        config = self.config
        for attempt in range(1, config.max_attempts + 1):
            record.attempts = attempt
            outcome = yield from self._attempt(
                client_id, to_site, record, generation)
            if outcome in ("committed", "failed-over"):
                # Straggler drain, then the record closes.
                yield self.sim.timeout(config.drain_s)
                record.completed_s = self.sim.now
                record.outcome = ("completed" if outcome == "committed"
                                  else "failed-over")
                return
            if outcome == "superseded":
                record.outcome = "superseded"
                return
            # Abort: roll back is implicit (the source was never
            # mutated); close the client's window so it resumes
            # sending at the source, then back off and retry.
            self._notify(client_id, record, "abort",
                         from_node=record.from_site)
            if attempt < config.max_attempts:
                yield self.sim.timeout(config.backoff_s(attempt))
                if self._superseded(client_id, generation):
                    record.outcome = "superseded"
                    return
        # Budget exhausted: the session stays at the source and the
        # client keeps its graceful local fallback for windows to come.
        record.outcome = "abandoned"
        record.completed_s = self.sim.now

    def _attempt(self, client_id: int, to_site: str,
                 record: HandoverRecord, generation: int):
        config = self.config
        entry = self.directory.entry(client_id)
        if entry is None:
            return "abort"
        source = entry.instance
        # Open the client's degradation window for this attempt.
        self._notify(client_id, record, "begin",
                     from_node=record.from_site)

        # -- WARM ------------------------------------------------------
        had_replica = any(
            i.is_running() and i.container.machine.name == to_site
            for i in self.orchestrator.instances(self.service))
        target = self._ensure_replica(to_site)
        if target is None:
            record.abort_reasons.append("no-capacity")
            return "abort"
        record.target = str(target.address)
        if not had_replica:
            yield self.sim.timeout(config.warmup_s)
        if record.warmed_s is None:
            record.warmed_s = self.sim.now
        if self._superseded(client_id, generation):
            return "superseded"
        if not target.is_running():
            record.abort_reasons.append("target-crashed")
            return "abort"

        # -- TRANSFER (iterative pre-copy) ------------------------------
        channel = RpcChannel(self.network, source.address.node)
        transfer_to = self._ensure_transfer_server(target)
        shipped: set = set()
        for __ in range(config.max_transfer_rounds):
            if not source.is_running():
                return self._fail_over(client_id, record, source,
                                       target, shipped, generation)
            snapshot = source.state.export_session(client_id,
                                                   exclude=shipped)
            if not snapshot:
                break
            record.rounds += 1
            outcome = yield from self._ship(
                channel, transfer_to, client_id, generation, snapshot,
                record, final=False)
            if outcome != "ok":
                if (outcome == "source-crashed"
                        or not source.is_running()):
                    return self._fail_over(client_id, record, source,
                                           target, shipped, generation)
                record.abort_reasons.append(outcome)
                return ("superseded" if outcome == "superseded"
                        else "abort")
            shipped.update(key for key, *__rest in snapshot)

        # -- CUTOVER -----------------------------------------------------
        if not source.is_running():
            return self._fail_over(client_id, record, source, target,
                                   shipped, generation)
        final_delta = source.state.export_session(client_id,
                                                  exclude=shipped)
        if final_delta:
            record.rounds += 1
            outcome = yield from self._ship(
                channel, transfer_to, client_id, generation,
                final_delta, record, final=True)
            if outcome != "ok":
                if (outcome == "source-crashed"
                        or not source.is_running()):
                    return self._fail_over(client_id, record, source,
                                           target, shipped, generation)
                record.abort_reasons.append(outcome)
                return ("superseded" if outcome == "superseded"
                        else "abort")
            shipped.update(key for key, *__rest in final_delta)
        if self._superseded(client_id, generation):
            return "superseded"
        if not target.is_running():
            record.abort_reasons.append("target-crashed")
            return "abort"
        self._commit(client_id, record, source, target, shipped)
        return "committed"

    def _ship(self, channel, transfer_to: Address, client_id: int,
              generation: int, entries, record: HandoverRecord,
              final: bool):
        """Ship one snapshot in bounded chunks; ``"ok"`` or a reason."""
        config = self.config
        for chunk in _chunk_entries(entries, config.chunk_bytes):
            if self._superseded(client_id, generation):
                return "superseded"
            size = int(sum(entry[3] for entry in chunk)
                       + config.entry_overhead_bytes * len(chunk))
            payload = _TransferChunk(client_id=client_id,
                                     generation=generation,
                                     entries=tuple(chunk), final=final)
            call = channel.call(transfer_to, payload, size_bytes=size)
            guard = self.sim.timeout(config.transfer_timeout_s)
            try:
                winner, value = yield self.sim.any_of([call, guard])
            except RpcTimeoutError:
                return "transfer-lost"
            if winner is guard:
                return "transfer-timeout"
            status, imported = value
            if status != "ok":
                return status
            record.chunks += 1
            record.state_entries += imported
            record.state_bytes += size
        return "ok"

    def _fail_over(self, client_id: int, record: HandoverRecord,
                   source, target, shipped: set,
                   generation: int) -> str:
        """Source died mid-transfer: forward recovery onto the target.

        Everything already shipped lives at the target; the rest died
        with the source (counted, never silent).  The directory moves
        forward — rolling back to a dead replica helps nobody.
        """
        if self._superseded(client_id, generation):
            return "superseded"
        if target is None or not target.is_running():
            record.abort_reasons.append("source-and-target-crashed")
            return "abort"
        dead = sum(1 for key in source.state.keys()
                   if isinstance(key, tuple) and key[0] == client_id
                   and key not in shipped)
        record.entries_lost += dead
        record.abort_reasons.append("source-crashed")
        self._commit(client_id, record, source, target, shipped,
                     source_alive=False)
        return "failed-over"

    def _commit(self, client_id: int, record: HandoverRecord,
                source, target, shipped: set, *,
                source_alive: bool = True) -> None:
        """The atomic cutover: one simulation instant, no yields."""
        if source_alive:
            # Moved entries leave the source (accounted as discarded —
            # their state lives on at the target); in-flight fetches
            # that still race here chase the forwarding tombstone.
            for key in shipped:
                source.state.discard(key)
            forward = getattr(source, "forward_table", None)
            if forward is not None:
                forward[client_id] = target.address
        target_forward = getattr(target, "forward_table", None)
        if target_forward is not None:
            # The new home must not forward its own session away (a
            # client bouncing back would otherwise chase a stale
            # tombstone from its previous stay).
            target_forward.pop(client_id, None)
        self.directory.bind(client_id, target, epoch=record.epoch)
        self._shift_credits(str(source.address), str(target.address))
        record.cutover_s = self.sim.now
        self._notify(client_id, record, "commit", from_node=record.to_site)

    def _shift_credits(self, source_addr: str, target_addr: str) -> None:
        """Epoch handoff in every upstream credit ledger: late grants
        from the old replica are dead; the new one is (re-)admitted."""
        for instance in self.orchestrator.all_instances():
            ledger = instance.credit_ledger(self.service)
            if ledger is not None:
                ledger.retire_instance(source_addr)
                ledger.restore_instance(target_addr)
        for client in self._clients.values():
            ledger = getattr(client, "ingress_credits", None)
            if ledger is not None and ledger.service == self.service:
                ledger.retire_instance(source_addr)
                ledger.restore_instance(target_addr)

    # ------------------------------------------------------------------
    # Naive kill-and-reconnect baseline
    # ------------------------------------------------------------------
    def _run_naive(self, client_id: int, to_site: str,
                   record: HandoverRecord, generation: int):
        """Break-before-make: tear the session down at the source and
        rebind — no transfer, no forwarding, no client notices.  The
        state (and every in-flight fetch against it) is lost; the
        count is honest."""
        entry = self.directory.entry(client_id)
        source = entry.instance if entry is not None else None
        record.attempts = 1
        target = self._ensure_replica(to_site)
        if target is None:
            record.outcome = "abandoned"
            record.completed_s = self.sim.now
            return
        record.target = str(target.address)
        if source is not None and source.is_running():
            session_keys = [key for key in source.state.keys()
                            if isinstance(key, tuple)
                            and key[0] == client_id]
            for key in session_keys:
                source.state.discard(key)
            record.entries_lost += len(session_keys)
        self.directory.bind(client_id, target, epoch=record.epoch)
        record.cutover_s = record.completed_s = self.sim.now
        record.outcome = "completed"
        if False:  # pragma: no cover - keeps this a generator process
            yield

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _ensure_transfer_server(self, target) -> Address:
        """Bind (once) the state-import endpoint next to ``target``."""
        address = Address(target.address.node,
                          target.address.port + TRANSFER_PORT_OFFSET)
        if address not in self._transfer_servers:
            self._transfer_servers[address] = RpcServer(
                self.network, address,
                self._import_handler(target))
        return address

    def _import_handler(self, target):
        def handler(chunk: _TransferChunk):
            # Stale generation: a newer handover superseded this
            # transfer mid-flight; the entries must not land.
            if self._generation.get(chunk.client_id) != chunk.generation:
                return ("superseded", 0)
            if not target.is_running():
                return ("target-crashed", 0)
            # Deserialization is real CPU at the target.
            yield from target.container.machine.execute_cpu(
                IMPORT_TIME_PER_ENTRY_S * len(chunk.entries))
            if not target.is_running():
                return ("target-crashed", 0)
            imported = target.state.import_entries(chunk.entries)
            return ("ok", imported)

        return handler

    def _notify(self, client_id: int, record: HandoverRecord,
                phase: str, *, from_node: str) -> None:
        client = self._clients.get(client_id)
        if client is None:
            return
        notice = HandoverNotice(
            client_id=client_id, service=self.service,
            epoch=record.epoch, phase=phase, site=record.to_site,
            sent_s=self.sim.now)
        datagram = Datagram(payload=notice,
                            size_bytes=NOTICE_WIRE_BYTES,
                            src=Address(from_node, 0),
                            dst=client.address)
        self.network.send(from_node, client.address, datagram,
                          NOTICE_WIRE_BYTES)


def _chunk_entries(entries, chunk_bytes: int):
    """Split exported entries into chunks of bounded wire size."""
    chunk: list = []
    used = 0
    for entry in entries:
        size = entry[3]
        if chunk and used + size > chunk_bytes:
            yield chunk
            chunk, used = [], 0
        chunk.append(entry)
        used += size
    if chunk:
        yield chunk
