"""Mobility-run reporting: handover outcomes, MTTR, loss accounting.

:func:`build_mobility_report` folds a
:class:`~repro.mobility.handover.HandoverCoordinator`'s records and the
clients' QoS logs into one JSON-ready :class:`MobilityReport` — the
columns the CLI prints and the campaign store persists.  Handover MTTR
here is window-open → cutover (the client-visible outage bound), per
the resilience chapter's convention of measuring recovery from the
client's side of the wire.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.summary import Summary, summarize
from repro.mobility.handover import HandoverCoordinator, HandoverRecord


@dataclass(frozen=True)
class MobilityReport:
    """Aggregate view of one mobility run."""

    #: Handovers the trajectories asked for (site changes).
    planned: int
    #: Protocol outcomes (completed + failed_over + abandoned +
    #: superseded + pending == started).
    started: int
    completed: int
    failed_over: int
    abandoned: int
    superseded: int
    pending: int
    #: Attempts across all handovers (> started ⇒ mid-handover faults
    #: forced retries).
    attempts: int
    retried: int
    #: Window-open → cutover, seconds, over handovers that cut over.
    mttr_s: Summary
    #: State moved between sites.
    state_entries_moved: int
    state_bytes_moved: float
    transfer_chunks: int
    #: Session entries that died instead of moving (source crashed
    #: mid-transfer, or the naive baseline tore the session down).
    state_entries_lost: int
    #: Client-side session accounting, summed over clients.
    handover_windows: int
    rejected_stale_results: int
    frames_lost: int
    frames_lost_by_reason: Dict[str, int] = field(default_factory=dict)
    abort_reasons: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["mttr_s"] = asdict(self.mttr_s)
        return payload


def build_mobility_report(
        coordinator: HandoverCoordinator,
        client_stats: Sequence,
        *,
        planned: Optional[int] = None) -> MobilityReport:
    """Fold handover records and client QoS logs into one report."""
    records: List[HandoverRecord] = coordinator.records
    outcomes = {"completed": 0, "failed-over": 0, "abandoned": 0,
                "superseded": 0, "pending": 0}
    abort_reasons: Dict[str, int] = {}
    latencies: List[float] = []
    attempts = 0
    retried = 0
    for record in records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        attempts += record.attempts
        if record.attempts > 1:
            retried += 1
        if record.latency_s is not None:
            latencies.append(record.latency_s)
        for reason in record.abort_reasons:
            abort_reasons[reason] = abort_reasons.get(reason, 0) + 1

    lost_by_reason: Dict[str, int] = {}
    windows = 0
    stale = 0
    lost = 0
    for stats in client_stats:
        windows += stats.handover_windows
        stale += stats.rejected_stale_results
        lost += stats.frames_lost
        for reason, count in stats.lost_by_reason().items():
            lost_by_reason[reason] = lost_by_reason.get(reason, 0) + count

    return MobilityReport(
        planned=len(records) if planned is None else planned,
        started=len(records),
        completed=outcomes["completed"],
        failed_over=outcomes["failed-over"],
        abandoned=outcomes["abandoned"],
        superseded=outcomes["superseded"],
        pending=outcomes["pending"],
        attempts=attempts,
        retried=retried,
        mttr_s=summarize(latencies),
        state_entries_moved=sum(r.state_entries for r in records),
        state_bytes_moved=sum(r.state_bytes for r in records),
        transfer_chunks=sum(r.chunks for r in records),
        state_entries_lost=sum(r.entries_lost for r in records),
        handover_windows=windows,
        rejected_stale_results=stale,
        frames_lost=lost,
        frames_lost_by_reason=lost_by_reason,
        abort_reasons=abort_reasons,
    )
