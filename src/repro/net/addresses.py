"""Addresses and Oakestra-style semantic service addressing.

Oakestra lets services reach each other through *semantic addresses*: a
stable service name resolves, at send time, to one concrete instance
address chosen by a balancing policy (round-robin by default).  The
:class:`ServiceRegistry` reproduces this: scAtteR services send to
``"sift"`` and the registry picks the replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True, order=True)
class Address:
    """A concrete endpoint: a node name plus a port number."""

    node: str
    port: int

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


BalancerFn = Callable[[str, List[Address]], Address]


class ServiceRegistry:
    """Maps service names to instance addresses with pluggable balancing.

    The default policy is round-robin per service name, mirroring
    Oakestra's replica balancing (§3.2, §4 "Service Scalability").
    """

    def __init__(self, balancer: Optional[BalancerFn] = None):
        self._instances: Dict[str, List[Address]] = {}
        self._rr_counters: Dict[str, int] = {}
        self._balancer = balancer

    def register(self, service: str, address: Address) -> None:
        """Add an instance address for ``service`` (idempotent)."""
        instances = self._instances.setdefault(service, [])
        if address not in instances:
            instances.append(address)

    def deregister(self, service: str, address: Address) -> None:
        instances = self._instances.get(service, [])
        if address in instances:
            instances.remove(address)

    def instances(self, service: str) -> List[Address]:
        """All registered instances of ``service`` (copy)."""
        return list(self._instances.get(service, []))

    def services(self) -> List[str]:
        return sorted(self._instances)

    def resolve(self, service: str) -> Address:
        """Pick one instance of ``service`` via the balancing policy.

        Raises :class:`LookupError` when the service has no instances.
        """
        instances = self._instances.get(service)
        if not instances:
            raise LookupError(f"no instances registered for {service!r}")
        if self._balancer is not None:
            return self._balancer(service, list(instances))
        counter = self._rr_counters.get(service, 0)
        self._rr_counters[service] = counter + 1
        return instances[counter % len(instances)]

    def resolve_sticky(self, service: str, key: int) -> Address:
        """Deterministically pin ``key`` to one instance (hash affinity).

        scAtteR uses this for the stateful ``sift``: frames balanced
        across sift replicas remain tied to one replica (§4).
        """
        instances = self._instances.get(service)
        if not instances:
            raise LookupError(f"no instances registered for {service!r}")
        return instances[key % len(instances)]
