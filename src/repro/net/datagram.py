"""UDP-like datagram sockets.

scAtteR uses UDP end-to-end (§3.1): no retransmission, no ordering
guarantees beyond FIFO links, and receivers that are busy simply never
see dropped packets.  A socket owns a receive queue (a FIFO
:class:`~repro.sim.resources.Store`) that service processes block on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import Address
from repro.net.topology import Network
from repro.sim.kernel import Waitable
from repro.sim.resources import Store


@dataclass(slots=True)
class Datagram:
    """A received packet: payload plus addressing metadata.

    Slotted: one is allocated per send on the hot path, and the slot
    layout keeps that allocation (and attribute access) cheap.
    """

    payload: object
    size_bytes: int
    src: Address
    dst: Address


#: Wire size of a health probe/ack packet (a UDP ping with a header).
HEALTH_WIRE_BYTES = 128


@dataclass(frozen=True, slots=True)
class HealthProbe:
    """Control-plane liveness probe sent by the failure detector.

    Probes ride the same datagram network as frames, so a partition or
    blackholed address silences them exactly like application traffic —
    which is what lets the detector *discover* failures instead of
    being told about them.
    """

    seq: int
    reply_to: Address
    sent_s: float


@dataclass(frozen=True, slots=True)
class HealthAck:
    """A service instance's reply to a :class:`HealthProbe`."""

    seq: int
    instance: Address
    probe_sent_s: float


class DatagramSocket:
    """An unreliable, connectionless socket bound to one address."""

    def __init__(self, network: Network, address: Address,
                 recv_capacity: Optional[int] = None):
        self.network = network
        self.address = address
        self._queue = Store(network.sim, capacity=recv_capacity)
        self.rx_count = 0
        self.rx_dropped_full = 0
        network.bind(address, self._on_delivery)

    def close(self) -> None:
        self.network.unbind(self.address)

    def _on_delivery(self, datagram: Datagram) -> None:
        self.rx_count += 1
        if not self._queue.offer(datagram):
            # Receive buffer overflow: kernel drops the packet, exactly
            # like an overrun UDP socket buffer.
            self.rx_dropped_full += 1

    def sendto(self, dst: Address, payload: object, size_bytes: int) -> bool:
        """Fire-and-forget send; returns in-network survival (UDP lies
        to no one here, but real callers must not rely on it)."""
        datagram = Datagram(payload=payload, size_bytes=size_bytes,
                            src=self.address, dst=dst)
        return self.network.send(self.address.node, dst, datagram,
                                 size_bytes)

    def recv(self) -> Waitable:
        """Waitable firing with the next :class:`Datagram` (FIFO)."""
        return self._queue.get()

    def recv_nowait(self) -> Datagram:
        """Immediate dequeue; raises :class:`LookupError` when empty."""
        return self._queue.get_nowait()

    @property
    def pending(self) -> int:
        return len(self._queue)
