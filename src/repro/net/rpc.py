"""Reliable request/response channel (gRPC stand-in).

scAtteR++'s sidecar hands frames to its attached service over gRPC
(§5).  Unlike the datagram path, RPCs are *reliable*: a lost packet is
retransmitted (with a retransmission timeout penalty) rather than
silently dropped, which is exactly the behavioural difference that
matters for the pipeline.  The server side dispatches requests to a
handler coroutine; responses travel back over the same route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.net.addresses import Address
from repro.net.topology import Network, NetworkError
from repro.sim.kernel import Signal, Waitable

#: Retransmission timeout charged per lost transmission attempt.  With
#: sidecars co-located with their service the RPC path is usually a
#: loopback, so this rarely triggers.
RETRANSMIT_TIMEOUT_S = 0.020

#: Give up after this many transmission attempts.
MAX_ATTEMPTS = 8


class RpcTimeoutError(RuntimeError):
    """Raised inside callers when an RPC exhausts its attempts."""


@dataclass(slots=True)
class _RpcEnvelope:
    request: object
    size_bytes: int
    reply_to: Signal
    src_node: str


RpcHandler = Callable[[object], Generator]


class RpcServer:
    """Binds an address and dispatches incoming RPCs to a handler.

    The handler is a *generator function* ``handler(request)`` executed
    as a simulation process; its return value is the RPC response.
    Requests are handled concurrently — admission control is the
    caller's job (the sidecar serializes calls itself).
    """

    def __init__(self, network: Network, address: Address,
                 handler: RpcHandler):
        self.network = network
        self.address = address
        self.handler = handler
        self.requests_served = 0
        network.bind(address, self._on_request)

    def close(self) -> None:
        self.network.unbind(self.address)

    def _on_request(self, envelope: _RpcEnvelope) -> None:
        self.network.sim.spawn(self._serve(envelope),
                               name=f"rpc-serve-{self.address}")

    def _serve(self, envelope: _RpcEnvelope):
        response = yield self.network.sim.spawn(
            self.handler(envelope.request))
        self.requests_served += 1
        # Deliver the response reliably back to the caller.
        delay = reliable_path_delay(self.network, self.address.node,
                                     envelope.src_node,
                                     size_bytes=max(64, envelope.size_bytes // 8))
        if delay is None:
            envelope.reply_to.fail(RpcTimeoutError(
                f"response from {self.address} lost after {MAX_ATTEMPTS} attempts"))
        else:
            self.network.sim.schedule(delay, envelope.reply_to.fire, response)


class RpcChannel:
    """Client side: issue reliable calls from a node to an address."""

    def __init__(self, network: Network, src_node: str):
        if not network.has_node(src_node):
            raise NetworkError(f"unknown node {src_node!r}")
        self.network = network
        self.src_node = src_node
        self.calls_issued = 0
        self.notifications_sent = 0

    def call(self, dst: Address, request: object,
             size_bytes: int) -> Waitable:
        """Issue an RPC; the returned waitable fires with the response
        (or raises :class:`RpcTimeoutError` in the waiter)."""
        self.calls_issued += 1
        reply = Signal(self.network.sim)
        envelope = _RpcEnvelope(request=request, size_bytes=size_bytes,
                                reply_to=reply, src_node=self.src_node)
        delay = reliable_path_delay(self.network, self.src_node, dst.node,
                                     size_bytes=size_bytes)
        if delay is None:
            self.network.sim.schedule(
                0.0, reply.fail,
                RpcTimeoutError(f"request to {dst} lost after {MAX_ATTEMPTS} attempts"))
        else:
            self.network.deliver_after(delay, dst, envelope)
        return reply

    def notify(self, dst: Address, payload: object,
               size_bytes: int) -> bool:
        """One-way reliable delivery of a control message.

        Used by the flow substrate for credit advertisements: the
        receiver gets a plain :class:`~repro.net.datagram.Datagram`
        (its normal ingress handler sees the payload), no response
        travels back, and the caller never blocks.  Returns whether
        the message survived the path.
        """
        from repro.net.datagram import Datagram

        self.notifications_sent += 1
        delay = reliable_path_delay(self.network, self.src_node,
                                    dst.node, size_bytes=size_bytes)
        if delay is None:
            return False
        datagram = Datagram(payload=payload, size_bytes=size_bytes,
                            src=Address(self.src_node, 0), dst=dst)
        self.network.deliver_after(delay, dst, datagram)
        return True


def reliable_path_delay(network: Network, src: str, dst: str,
                        size_bytes: int) -> Optional[float]:
    """Delay for a reliable transfer ``src -> dst``.

    Walks the route like a datagram, but a per-hop loss draw costs a
    retransmission timeout instead of losing the message.  Returns
    ``None`` only when every attempt on some hop is lost.  Used by the
    RPC layer and by services configured for reliable inter-service
    transport (the Appendix A.1.2 "improved network protocols"
    direction).
    """
    if src == dst:
        return 0.0
    path = network.route(src, dst)
    total = 0.0
    # Indexed walk: no ``path[1:]`` slice allocation per call (this
    # runs once per RPC and once per reliable-transport send).
    for hop in range(len(path) - 1):
        link = network.link(path[hop], path[hop + 1])
        for attempt in range(MAX_ATTEMPTS):
            delay = link.transmit(size_bytes)
            if delay is not None:
                total += delay + attempt * RETRANSMIT_TIMEOUT_S
                break
        else:
            return None
    return total
