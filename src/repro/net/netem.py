"""``tc netem``-style egress impairments (paper Appendix A.1.1).

The paper emulates mobile access links with the Linux traffic-control
``netem`` qdisc: artificial delay, probabilistic packet loss, and — to
emulate mobility — a 10 ms delay oscillation applied with 20 %
probability.  :class:`Netem` reproduces those three knobs and carries
the paper's LTE / 5G / WiFi-6 presets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Netem:
    """Impairment profile attached to a link egress.

    Parameters mirror ``tc qdisc add dev ... root netem``:

    * ``delay_s`` — constant extra one-way delay.
    * ``loss`` — independent per-packet drop probability.
    * ``oscillation_s`` / ``oscillation_prob`` — extra delay added with
      the given probability (the paper's "10 ms delay oscillation with
      20% probability" mobility emulation).
    """

    delay_s: float = 0.0
    loss: float = 0.0
    oscillation_s: float = 0.0
    oscillation_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"negative netem delay {self.delay_s}")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"netem loss must be a probability, got {self.loss}")
        if not 0.0 <= self.oscillation_prob <= 1.0:
            raise ValueError(
                f"oscillation_prob must be a probability, got {self.oscillation_prob}")

    def drops(self, rng: np.random.Generator) -> bool:
        """Draw whether this packet is dropped by the impairment."""
        return self.loss > 0.0 and rng.random() < self.loss

    def extra_delay(self, rng: np.random.Generator) -> float:
        """Extra one-way delay for this packet."""
        delay = self.delay_s
        if (self.oscillation_s > 0.0 and self.oscillation_prob > 0.0
                and rng.random() < self.oscillation_prob):
            delay += self.oscillation_s
        return delay


def apply_netem_schedule(network, src: str, dst: str,
                         schedule, symmetric: bool = True):
    """Swap a link's netem profile over time (handover emulation).

    ``schedule`` is a sequence of ``(at_s, profile)`` pairs — e.g. a
    client walking out of WiFi-6 coverage onto LTE at t=30 s.  Returns
    the simulation process driving the swaps.
    """
    entries = sorted(schedule, key=lambda pair: pair[0])
    if not entries:
        raise ValueError("schedule must contain at least one entry")
    if entries[0][0] < 0:
        raise ValueError("schedule times must be non-negative")

    def driver():
        for at_s, profile in entries:
            delay = at_s - network.sim.now
            if delay > 0:
                yield network.sim.timeout(delay)
            network.set_netem(src, dst, profile, symmetric=symmetric)

    return network.sim.spawn(driver(), name=f"netem-{src}-{dst}")


def mobility_oscillation() -> dict:
    """The paper's mobility emulation: 10 ms oscillation, 20 % probability."""
    return {"oscillation_s": 0.010, "oscillation_prob": 0.20}


def lte_profile() -> Netem:
    """LTE access: 40 ms RTT and 0.08 % loss [Dang et al., IMC'21]."""
    return Netem(delay_s=0.040 / 2.0, loss=0.0008, **mobility_oscillation())


def nr5g_profile(loss: float = 0.0001) -> Netem:
    """5G access: 10 ms RTT, 1e-5 – 1e-4 loss [Rischke et al.]."""
    return Netem(delay_s=0.010 / 2.0, loss=loss, **mobility_oscillation())


def wifi6_profile(loss: float = 0.0001) -> Netem:
    """WiFi-6 access: 5 ms RTT, 1e-5 – 1e-4 loss [Maldonado et al.]."""
    return Netem(delay_s=0.005 / 2.0, loss=loss, **mobility_oscillation())
