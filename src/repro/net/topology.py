"""Node/link graph with routing and datagram delivery.

The :class:`Network` owns all nodes, the directed links between them and
the bound datagram sockets.  Delivery walks the (precomputed) shortest
path hop by hop: each hop applies that link's loss, queueing and delay,
so a multi-hop path (client → E1 → E2) composes impairments exactly as
the physical testbed would.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.net.addresses import Address
from repro.net.link import Link
from repro.net.netem import Netem
from repro.sim.kernel import Simulator


class NetworkError(RuntimeError):
    """Raised for topology misuse (unknown nodes, no route, port clash)."""


class Network:
    """The simulated interconnect."""

    def __init__(self, sim: Simulator,
                 rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._graph = nx.DiGraph()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._sockets: Dict[Address, Callable] = {}
        self._routes: Dict[Tuple[str, str], List[str]] = {}
        self.stats_delivered = 0
        self.stats_lost = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        self._graph.add_node(name)

    def has_node(self, name: str) -> bool:
        return self._graph.has_node(name)

    def nodes(self) -> List[str]:
        return sorted(self._graph.nodes)

    def add_link(self, src: str, dst: str, *, rtt_s: float,
                 bandwidth_bps: float = 1e9, jitter_s: float = 0.0,
                 loss: float = 0.0, netem: Optional[Netem] = None,
                 symmetric: bool = True) -> None:
        """Wire ``src`` and ``dst`` with one-way latency ``rtt_s / 2``.

        With ``symmetric=True`` (default) the reverse direction is
        created with identical parameters.
        """
        for name in (src, dst):
            if not self._graph.has_node(name):
                self._graph.add_node(name)
        directions = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        for a, b in directions:
            link = Link(self.sim, a, b, latency_s=rtt_s / 2.0,
                        bandwidth_bps=bandwidth_bps, jitter_s=jitter_s,
                        loss=loss, rng=self.rng, netem=netem)
            self._links[(a, b)] = link
            self._graph.add_edge(a, b, weight=rtt_s / 2.0)
        self._routes.clear()

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src} -> {dst}") from None

    def set_netem(self, src: str, dst: str, netem: Optional[Netem],
                  symmetric: bool = True) -> None:
        """Attach/replace a netem profile on an existing link."""
        self.link(src, dst).netem = netem
        if symmetric:
            self.link(dst, src).netem = netem

    def partition(self, group_a: Iterable[str],
                  group_b: Iterable[str]) -> List[Tuple[str, str,
                                                        Optional[Netem]]]:
        """Blackhole every direct link crossing the two node groups.

        Models a network partition the way ``tc netem loss 100%`` does:
        links stay up (routes unchanged) but every packet crossing the
        cut is dropped — control-plane probes included.  Returns the
        saved pre-partition netem profiles; pass them to :meth:`heal`.
        """
        saved: List[Tuple[str, str, Optional[Netem]]] = []
        for a in group_a:
            for b in group_b:
                for src, dst in ((a, b), (b, a)):
                    link = self._links.get((src, dst))
                    if link is None:
                        continue
                    saved.append((src, dst, link.netem))
                    link.netem = Netem(loss=1.0)
        if not saved:
            raise NetworkError(
                f"no links cross the partition {sorted(group_a)} | "
                f"{sorted(group_b)}")
        return saved

    def heal(self, saved: List[Tuple[str, str, Optional[Netem]]]) -> None:
        """Undo a :meth:`partition`, restoring the saved profiles."""
        for src, dst, netem in saved:
            link = self._links.get((src, dst))
            if link is not None:
                link.netem = netem

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> List[str]:
        """Shortest-latency node path from ``src`` to ``dst`` (cached)."""
        if src == dst:
            return [src]
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            try:
                path = nx.shortest_path(self._graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise NetworkError(f"no route {src} -> {dst}") from exc
            self._routes[key] = path
        return path

    def path_rtt(self, src: str, dst: str) -> float:
        """Sum of link RTTs along the route (no queueing/jitter)."""
        path = self.route(src, dst)
        one_way = sum(self._links[(a, b)].latency_s
                      for a, b in zip(path, path[1:]))
        return 2.0 * one_way

    # ------------------------------------------------------------------
    # Socket binding and delivery
    # ------------------------------------------------------------------
    def bind(self, address: Address, handler: Callable) -> None:
        """Register a delivery callback for ``address``."""
        if not self._graph.has_node(address.node):
            raise NetworkError(f"unknown node {address.node!r}")
        if address in self._sockets:
            raise NetworkError(f"address {address} already bound")
        self._sockets[address] = handler

    def unbind(self, address: Address) -> None:
        self._sockets.pop(address, None)

    def is_bound(self, address: Address) -> bool:
        return address in self._sockets

    def send(self, src: str, dst_address: Address, payload: object,
             size_bytes: int) -> bool:
        """Best-effort datagram delivery.

        Returns ``True`` if the packet survived every hop and was
        scheduled for delivery (the caller learns nothing more — this is
        UDP).  Local delivery (``src == dst``) is immediate and lossless.
        """
        if size_bytes < 0:
            raise NetworkError(f"negative size {size_bytes}")
        path = self.route(src, dst_address.node)
        total_delay = 0.0
        for a, b in zip(path, path[1:]):
            delay = self._links[(a, b)].transmit(size_bytes)
            if delay is None:
                self.stats_lost += 1
                return False
            total_delay += delay
        self.stats_delivered += 1
        self.sim.schedule(total_delay, self._deliver, dst_address, payload)
        return True

    def deliver_after(self, delay: float, address: Address,
                      payload: object) -> None:
        """Schedule direct delivery to a bound address (used by the
        reliable RPC layer, which computes its own path delay)."""
        self.sim.schedule(delay, self._deliver, address, payload)

    def _deliver(self, address: Address, payload: object) -> None:
        handler = self._sockets.get(address)
        if handler is not None:
            handler(payload)
        # An unbound address silently eats the packet, as UDP would.
