"""Point-to-point link model.

A link carries packets with:

* one-way propagation latency (half the configured RTT),
* serialization delay (size / bandwidth) with FIFO queueing at the
  sender — the link's transmitter is busy while a packet serializes,
* Gaussian jitter (truncated at zero) on top of propagation,
* independent per-packet loss, and
* an optional :class:`~repro.net.netem.Netem` impairment stage, the
  equivalent of attaching ``tc netem`` to the egress interface.

Delay bookkeeping uses a ``busy_until`` watermark instead of a full
transmitter process: serialization of packet *n+1* starts when packet
*n* finishes, which models egress queueing exactly for FIFO links while
keeping the event count low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.netem import Netem
from repro.sim.kernel import Simulator


@dataclass
class LinkStats:
    """Counters exposed for tests and experiment reporting."""

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0


class Link:
    """A one-way link between two named nodes."""

    #: Ethernet MTU: a frame bigger than this travels as multiple UDP
    #: fragments, and losing any fragment loses the whole frame.
    MTU_BYTES = 1500

    def __init__(self, sim: Simulator, src: str, dst: str, *,
                 latency_s: float, bandwidth_bps: float,
                 jitter_s: float = 0.0, loss: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 netem: Optional[Netem] = None):
        if latency_s < 0:
            raise ValueError(f"negative latency {latency_s}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {loss}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.jitter_s = jitter_s
        self.loss = loss
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.netem = netem
        self.stats = LinkStats()
        self._busy_until = 0.0

    @property
    def queue_delay(self) -> float:
        """Current egress queueing delay for a newly arriving packet."""
        return max(0.0, self._busy_until - self.sim.now)

    def transmit(self, size_bytes: int) -> Optional[float]:
        """Send a packet of ``size_bytes``.

        Returns the one-way delivery delay in seconds, or ``None`` if
        the packet was lost (link loss or netem loss).
        """
        stats = self.stats
        netem = self.netem
        stats.packets_sent += 1

        # Per-fragment loss: an application frame of ``size_bytes``
        # rides ceil(size/MTU) UDP fragments, and one lost fragment
        # loses the frame.  This is why sub-percent packet loss visibly
        # dents the frame success rate of a 180 KB-per-frame stream.
        # The fragment math runs only on lossy links — the RNG draw
        # sequence (one draw per packet iff loss is possible) is
        # unchanged.
        per_fragment_loss = self.loss
        if netem is not None and netem.loss > 0.0:
            per_fragment_loss = 1.0 - ((1.0 - per_fragment_loss)
                                       * (1.0 - netem.loss))
        if per_fragment_loss > 0.0:
            fragments = max(1, -(-size_bytes // self.MTU_BYTES))
            frame_loss = 1.0 - (1.0 - per_fragment_loss) ** fragments
            if self.rng.random() < frame_loss:
                stats.packets_dropped += 1
                return None

        # NB: the serialization expression must stay ``(bytes * 8) /
        # bandwidth`` verbatim — precomputing a reciprocal changes the
        # result in the last ulp, which shifts event times and breaks
        # the golden digests.
        now = self.sim.now
        serialization = (size_bytes * 8.0) / self.bandwidth_bps
        busy_until = self._busy_until
        start = now if now >= busy_until else busy_until
        self._busy_until = start + serialization
        queue_wait = start - now
        stats.busy_time += serialization
        stats.bytes_sent += size_bytes

        delay = queue_wait + serialization + self.latency_s
        if self.jitter_s > 0.0:
            delay += abs(float(self.rng.normal(0.0, self.jitter_s)))
        if netem is not None:
            delay += netem.extra_delay(self.rng)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Link({self.src}->{self.dst}, {self.latency_s * 1e3:.2f} ms, "
                f"{self.bandwidth_bps / 1e9:.2f} Gbps)")
