"""Network substrate.

Models the testbed interconnect of the paper (§3.2): client NUCs wired to
edge server E1 (≤1 ms RTT), E1–E2 over LAN (≈3 ms RTT) and a public-cloud
path (≈15 ms RTT).  Provides:

* :class:`~repro.net.link.Link` — one-way link with propagation latency,
  serialization bandwidth, jitter and probabilistic loss.
* :class:`~repro.net.netem.Netem` — ``tc netem``-style impairments
  (extra delay, delay oscillation, loss) used by Appendix A.1.1.
* :class:`~repro.net.topology.Network` — node/link graph with
  shortest-path routing and datagram delivery.
* :class:`~repro.net.datagram.DatagramSocket` — UDP-like unreliable
  sockets (scAtteR's transport).
* :class:`~repro.net.rpc.RpcChannel` — reliable request/response
  channel (the sidecar's gRPC hand-off in scAtteR++).
* :class:`~repro.net.addresses.ServiceRegistry` — Oakestra-style
  semantic addressing from service names to instance addresses.
"""

from repro.net.addresses import Address, ServiceRegistry
from repro.net.datagram import Datagram, DatagramSocket
from repro.net.link import Link
from repro.net.netem import Netem
from repro.net.rpc import RpcChannel, RpcServer, RpcTimeoutError
from repro.net.topology import Network, NetworkError

__all__ = [
    "Address",
    "Datagram",
    "DatagramSocket",
    "Link",
    "Netem",
    "Network",
    "NetworkError",
    "RpcChannel",
    "RpcServer",
    "RpcTimeoutError",
    "ServiceRegistry",
]
