"""Unit tests for the reliable RPC channel."""

import numpy as np
import pytest

from repro.net import Address, Network, RpcChannel, RpcServer, RpcTimeoutError
from repro.sim import Simulator


def make_rpc_pair(loss=0.0, handler_delay=0.0):
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.002, loss=loss)

    def handler(request):
        if handler_delay:
            yield sim.timeout(handler_delay)
        else:
            yield sim.timeout(0.0)
        return {"echo": request}

    server = RpcServer(net, Address("b", 50051), handler)
    channel = RpcChannel(net, "a")
    return sim, net, server, channel


def test_rpc_round_trip():
    sim, __, server, channel = make_rpc_pair()
    got = []

    def caller():
        response = yield channel.call(server.address, "ping", size_bytes=100)
        got.append((sim.now, response))

    sim.spawn(caller())
    sim.run()
    assert len(got) == 1
    when, response = got[0]
    assert response == {"echo": "ping"}
    assert when >= 0.002  # request + response one-way latencies
    assert server.requests_served == 1


def test_rpc_includes_handler_time():
    sim, __, server, channel = make_rpc_pair(handler_delay=0.050)
    got = []

    def caller():
        yield channel.call(server.address, "x", size_bytes=10)
        got.append(sim.now)

    sim.spawn(caller())
    sim.run()
    assert got[0] >= 0.052


def test_rpc_survives_lossy_link():
    # 50% loss: datagrams would vanish, RPC retries and still succeeds.
    sim, __, server, channel = make_rpc_pair(loss=0.5)
    results = []

    def caller():
        response = yield channel.call(server.address, "ping", size_bytes=10)
        results.append(response)

    sim.spawn(caller())
    sim.run()
    assert results == [{"echo": "ping"}]


def test_rpc_retransmission_adds_delay():
    sim_clean, __, server_c, channel_c = make_rpc_pair(loss=0.0)
    done_clean = []

    def caller_clean():
        yield channel_c.call(server_c.address, "p", size_bytes=10)
        done_clean.append(sim_clean.now)

    sim_clean.spawn(caller_clean())
    sim_clean.run()

    sim_lossy, __, server_l, channel_l = make_rpc_pair(loss=0.8)
    done_lossy = []

    def caller_lossy():
        try:
            yield channel_l.call(server_l.address, "p", size_bytes=10)
            done_lossy.append(sim_lossy.now)
        except RpcTimeoutError:
            done_lossy.append(None)

    sim_lossy.spawn(caller_lossy())
    sim_lossy.run()
    if done_lossy[0] is not None:
        assert done_lossy[0] > done_clean[0]


def test_rpc_total_loss_raises_timeout():
    sim, __, server, channel = make_rpc_pair(loss=1.0)
    outcome = []

    def caller():
        try:
            yield channel.call(server.address, "p", size_bytes=10)
            outcome.append("ok")
        except RpcTimeoutError:
            outcome.append("timeout")

    sim.spawn(caller())
    sim.run()
    assert outcome == ["timeout"]


def test_rpc_local_call_is_instant():
    sim = Simulator()
    net = Network(sim)
    net.add_node("solo")

    def handler(request):
        yield sim.timeout(0.010)
        return request * 2

    server = RpcServer(net, Address("solo", 1), handler)
    channel = RpcChannel(net, "solo")
    got = []

    def caller():
        response = yield channel.call(server.address, 21, size_bytes=10)
        got.append((sim.now, response))

    sim.spawn(caller())
    sim.run()
    assert got == [(0.010, 42)]


def test_concurrent_rpc_calls_serve_independently():
    sim, __, server, channel = make_rpc_pair(handler_delay=0.010)
    done = []

    def caller(tag):
        response = yield channel.call(server.address, tag, size_bytes=10)
        done.append((tag, sim.now))

    sim.spawn(caller("a"))
    sim.spawn(caller("b"))
    sim.run()
    assert len(done) == 2
    # Handlers run concurrently, so both finish ~same time, not 2x.
    times = [when for __, when in done]
    assert max(times) < 0.030
