"""A paper-methodology-length run: stability over five virtual minutes.

The paper's runs last five minutes of wall clock (§3.2).  This test
replays that length in virtual time (a few seconds of wall time) and
checks the system reaches and holds a steady state: no drift in FPS
between the first and second half, books balanced at the end, and
memory bounded — i.e. nothing leaks or degrades over a long run.
"""

import numpy as np
import pytest

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import baseline_configs

DURATION_S = 300.0  # the paper's five minutes


@pytest.fixture(scope="module")
def long_scatter():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=2,
                                  duration_s=DURATION_S)


@pytest.fixture(scope="module")
def long_scatterpp():
    return run_scatterpp_experiment(baseline_configs()["C1"],
                                    num_clients=2,
                                    duration_s=DURATION_S)


def halves_fps(result):
    half = DURATION_S / 2.0
    first, second = [], []
    for client in result.clients:
        first.append(sum(1 for t in client.received.values()
                         if t <= half) / half)
        second.append(sum(1 for t in client.received.values()
                          if t > half) / half)
    return float(np.mean(first)), float(np.mean(second))


def test_scatter_steady_state(long_scatter):
    first, second = halves_fps(long_scatter)
    assert first > 5.0
    # No systematic drift over five minutes.
    assert second == pytest.approx(first, rel=0.15)


def test_scatterpp_steady_state(long_scatterpp):
    first, second = halves_fps(long_scatterpp)
    assert first > 25.0
    assert second == pytest.approx(first, rel=0.10)


def test_no_memory_creep(long_scatter):
    """sift's state memory stays bounded: entries keep expiring."""
    sift = long_scatter.pipeline.instances("sift")[0]
    # Bounded by (TTL x max arrival rate) worth of entries.
    assert len(sift.state) < 200
    capacity = sift.container.machine.memory.capacity_bytes
    assert sift.container.machine.memory.in_use_bytes < 0.2 * capacity


def test_monitor_sampled_full_run(long_scatter):
    samples = long_scatter.monitor.samples
    assert len(samples) >= DURATION_S - 2
    # Sampling cadence held throughout.
    gaps = np.diff([s.timestamp_s for s in samples])
    assert np.allclose(gaps, 1.0)


def test_long_run_books_balance(long_scatterpp):
    for service_instances in (
            long_scatterpp.pipeline.instances(s)
            for s in ("primary", "sift", "encoding", "lsh",
                      "matching")):
        for instance in service_instances:
            stats = instance.sidecar.stats
            accounted = (stats.dispatched + stats.dropped_stale
                         + instance.sidecar.depth)
            assert 0 <= stats.enqueued - accounted <= 1
