"""Unit tests for FAST corners and BRIEF binary descriptors."""

import numpy as np
import pytest

from repro.vision.fast_features import (
    BriefDescriptor,
    detect_fast,
    hamming_distance,
    match_binary,
)


def corner_image(size=48):
    """A bright square on a dark background: four crisp corners."""
    image = np.full((size, size), 0.1)
    image[12:36, 12:36] = 0.9
    return image


def test_fast_detects_square_corners():
    keypoints = detect_fast(corner_image(), threshold=0.2)
    assert keypoints, "no corners on a literal square"
    found = {(kp.x, kp.y) for kp in keypoints}
    expected = [(12, 12), (35, 12), (12, 35), (35, 35)]
    for ex, ey in expected:
        assert any(abs(x - ex) <= 2 and abs(y - ey) <= 2
                   for x, y in found), (ex, ey)


def test_fast_flat_image_no_corners():
    assert detect_fast(np.full((32, 32), 0.5)) == []


def test_fast_straight_edge_is_not_a_corner():
    image = np.full((32, 32), 0.1)
    image[:, 16:] = 0.9  # a vertical edge, no corners
    keypoints = detect_fast(image, threshold=0.2, arc_length=12)
    assert keypoints == []


def test_fast_max_keypoints_and_ordering():
    rng = np.random.default_rng(0)
    image = rng.random((64, 64))
    keypoints = detect_fast(image, threshold=0.05, max_keypoints=10)
    assert len(keypoints) <= 10
    scores = [kp.score for kp in keypoints]
    assert scores == sorted(scores, reverse=True)


def test_fast_nms_spreads_keypoints():
    keypoints = detect_fast(corner_image(), threshold=0.2, nms_radius=3)
    for i, a in enumerate(keypoints):
        for b in keypoints[i + 1:]:
            assert max(abs(a.x - b.x), abs(a.y - b.y)) > 1


def test_fast_validation():
    with pytest.raises(ValueError):
        detect_fast(np.zeros((4, 4, 3)))
    with pytest.raises(ValueError):
        detect_fast(np.zeros((32, 32)), arc_length=0)
    assert detect_fast(np.zeros((5, 5))) == []


def test_brief_shapes_and_determinism():
    image = corner_image()
    keypoints = detect_fast(image, threshold=0.2)
    brief = BriefDescriptor(n_bits=128, seed=1)
    first = brief.describe(image, keypoints)
    second = brief.describe(image, keypoints)
    assert first.shape == (len(keypoints), 16)
    assert first.dtype == np.uint8
    assert np.array_equal(first, second)


def test_brief_empty_keypoints():
    brief = BriefDescriptor()
    descriptors = brief.describe(corner_image(), [])
    assert descriptors.shape == (0, 32)


def test_brief_validation():
    with pytest.raises(ValueError):
        BriefDescriptor(n_bits=100)
    with pytest.raises(ValueError):
        BriefDescriptor(patch_size=16)


def test_brief_descriptors_match_across_translation():
    rng = np.random.default_rng(2)
    texture = rng.random((40, 40))
    big_a = np.full((80, 80), 0.5)
    big_b = np.full((80, 80), 0.5)
    big_a[10:50, 10:50] = texture
    big_b[20:60, 25:65] = texture  # shifted by (15, 10)

    kp_a = detect_fast(big_a, threshold=0.1, max_keypoints=60)
    kp_b = detect_fast(big_b, threshold=0.1, max_keypoints=60)
    brief = BriefDescriptor(seed=0)
    desc_a = brief.describe(big_a, kp_a)
    desc_b = brief.describe(big_b, kp_b)
    matches = match_binary(desc_a, desc_b, ratio=0.95)
    assert len(matches) >= 5
    # Most matches agree with the (dx, dy) = (15, 10) translation.
    good = 0
    for match in matches:
        a = kp_a[match.query_index]
        b = kp_b[match.reference_index]
        if abs((b.x - a.x) - 15) <= 2 and abs((b.y - a.y) - 10) <= 2:
            good += 1
    assert good >= len(matches) // 2


def test_hamming_distance_basic():
    a = np.array([[0b00000000], [0b11111111]], dtype=np.uint8)
    b = np.array([[0b00001111]], dtype=np.uint8)
    distances = hamming_distance(a, b)
    assert distances.tolist() == [[4], [4]]
    assert hamming_distance(a, a).tolist() == [[0, 8], [8, 0]]


def test_hamming_validation():
    with pytest.raises(ValueError):
        hamming_distance(np.zeros((1, 2), dtype=np.uint8),
                         np.zeros((1, 3), dtype=np.uint8))


def test_match_binary_identical_sets():
    rng = np.random.default_rng(3)
    descriptors = rng.integers(0, 256, (10, 32)).astype(np.uint8)
    matches = match_binary(descriptors, descriptors, ratio=0.99)
    assert len(matches) == 10
    assert all(m.distance == 0 for m in matches)
    assert all(m.query_index == m.reference_index for m in matches)


def test_match_binary_max_distance_filter():
    a = np.zeros((1, 4), dtype=np.uint8)
    b = np.full((1, 4), 255, dtype=np.uint8)  # 32 bits apart
    assert match_binary(a, b, max_distance=10) == []
    assert len(match_binary(a, b, max_distance=32)) == 1


def test_match_binary_empty():
    empty = np.zeros((0, 4), dtype=np.uint8)
    full = np.zeros((2, 4), dtype=np.uint8)
    assert match_binary(empty, full) == []
    assert match_binary(full, empty) == []


def test_fast_brief_is_cheaper_than_sift():
    """The whole point (§5): the fast model costs far less per frame."""
    import time

    from repro.vision.sift import SiftExtractor
    from repro.vision.video import SyntheticVideo

    frame = SyntheticVideo(seed=0).frame(0).image
    sift = SiftExtractor(contrast_threshold=0.01, max_keypoints=300)
    brief = BriefDescriptor(seed=0)

    def run_sift():
        sift.detect_and_describe(frame)

    def run_fast():
        keypoints = detect_fast(frame, threshold=0.08,
                                max_keypoints=300)
        brief.describe(frame, keypoints)

    def best_of(fn, repeats=3):
        fn()  # warm-up (allocator, caches)
        times = []
        for __ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    assert best_of(run_fast) < best_of(run_sift)
