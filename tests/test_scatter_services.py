"""Unit tests for individual scAtteR services in isolation."""

import numpy as np
import pytest

from repro.cluster import Container, Machine
from repro.cluster.gpu import RTX_2080
from repro.cluster.machine import GB
from repro.dsp.record import FrameRecord, RecordKind
from repro.net import Address, Datagram, Network, ServiceRegistry
from repro.scatter import config
from repro.scatter.services import (
    EncodingService,
    LshService,
    MatchingService,
    PrimaryService,
    SiftService,
)
from repro.scatterpp.services import (
    StatelessMatchingService,
    StatelessSiftService,
)
from repro.sim import Simulator


class Harness:
    """One machine, a registry, and capture sinks for each service."""

    def __init__(self):
        self.sim = Simulator()
        self.network = Network(self.sim, rng=np.random.default_rng(0))
        self.network.add_link("client", "m", rtt_s=0.001)
        self.machine = Machine(self.sim, "m", cpu_cores=8,
                               memory_gb=128,
                               gpu_architecture=RTX_2080, gpu_count=2)
        self.registry = ServiceRegistry()
        self.received = {}
        self.client = Address("client", 9000)
        self.network.bind(self.client, self._capture("client"))

    def _capture(self, name):
        def handler(datagram):
            self.received.setdefault(name, []).append(datagram.payload)

        return handler

    def sink(self, service_name, port):
        address = Address("m", port)
        self.network.bind(address, self._capture(service_name))
        self.registry.register(service_name, address)
        return address

    def make(self, service_class, name, port, **kwargs):
        container = Container(
            self.machine, name,
            base_memory_bytes=config.SERVICE_MEMORY_BYTES[name],
            uses_gpu=config.SERVICE_USES_GPU[name])
        service = service_class(
            name=name, network=self.network, registry=self.registry,
            container=container, address=Address("m", port),
            base_time_s=config.SERVICE_TIME_S[name],
            rng=np.random.default_rng(7), **kwargs)
        service.start()
        return service

    def inject(self, service, record):
        datagram = Datagram(payload=record,
                            size_bytes=record.size_bytes,
                            src=self.client, dst=service.address)
        self.network.deliver_after(0.0, service.address, datagram)

    def record(self, step="primary", frame=0, size=1000,
               kind=RecordKind.FRAME):
        return FrameRecord(client_id=0, frame_number=frame,
                           reply_to=self.client, step=step,
                           created_s=self.sim.now, size_bytes=size,
                           kind=kind)


def test_primary_forwards_preprocessed_frame():
    harness = Harness()
    primary = harness.make(PrimaryService, "primary", 6000)
    harness.sink("sift", 6100)
    harness.inject(primary, harness.record())
    harness.sim.run()
    forwarded = harness.received["sift"]
    assert len(forwarded) == 1
    record = forwarded[0]
    assert record.step == "sift"
    assert record.size_bytes == config.WIRE_SIZES["primary->sift"]


def test_sift_stores_state_and_pins_address():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000)
    harness.sink("encoding", 6100)
    harness.inject(sift, harness.record(step="sift", frame=3))
    harness.sim.run(until=0.2)  # well before the state TTL
    record = harness.received["encoding"][0]
    assert record.sift_address == sift.address
    assert len(sift.state) == 1
    assert sift.state.peek((0, 3)) is not None
    # The state bytes are charged to the container.
    assert sift.container.state_memory_bytes == \
        config.STATE_ENTRY_BYTES


def test_sift_serves_fetch_and_frees_state():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000)
    harness.sink("encoding", 6100)
    matching_addr = harness.sink("matching", 6200)
    harness.inject(sift, harness.record(step="sift", frame=5))
    harness.sim.run(until=0.2)

    fetch = harness.record(step="sift", frame=5, kind=RecordKind.FETCH)
    fetch.meta["fetch_reply_to"] = matching_addr
    harness.inject(sift, fetch)
    harness.sim.run(until=0.4)
    assert sift.fetch_hits == 1
    response = harness.received["matching"][0]
    assert response.kind is RecordKind.FETCH_RESPONSE
    assert response.size_bytes == config.WIRE_SIZES["sift->matching"]
    assert len(sift.state) == 0
    assert sift.container.state_memory_bytes == 0


def test_sift_fetch_miss_sends_nothing():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000)
    matching_addr = harness.sink("matching", 6200)
    fetch = harness.record(step="sift", frame=99,
                           kind=RecordKind.FETCH)
    fetch.meta["fetch_reply_to"] = matching_addr
    harness.inject(sift, fetch)
    harness.sim.run()
    assert sift.fetch_misses == 1
    assert "matching" not in harness.received


def test_sift_state_expires_after_ttl():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000,
                        state_ttl_s=0.5)
    harness.sink("encoding", 6100)
    harness.inject(sift, harness.record(step="sift", frame=1))
    harness.sim.run(until=0.4)
    assert len(sift.state) == 1
    harness.sim.run(until=1.0)
    assert len(sift.state) == 0


def test_encoding_and_lsh_forward_chain():
    harness = Harness()
    encoding = harness.make(EncodingService, "encoding", 6000)
    harness.sink("lsh", 6100)
    harness.inject(encoding, harness.record(step="encoding"))
    harness.sim.run()
    record = harness.received["lsh"][0]
    assert record.step == "lsh"
    assert record.size_bytes == config.WIRE_SIZES["encoding->lsh"]

    lsh = harness.make(LshService, "lsh", 6200)
    harness.sink("matching", 6300)
    harness.inject(lsh, harness.record(step="lsh"))
    harness.sim.run()
    assert harness.received["matching"][0].size_bytes == \
        config.WIRE_SIZES["lsh->matching"]


def test_matching_completes_frame_with_fetch():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000)
    harness.sink("encoding", 6100)
    matching = harness.make(MatchingService, "matching", 6200)
    # Seed sift with state for frame 7.
    harness.inject(sift, harness.record(step="sift", frame=7))
    harness.sim.run(until=0.2)

    work = harness.record(step="matching", frame=7)
    work.sift_address = sift.address
    harness.inject(matching, work)
    harness.sim.run(until=0.5)
    assert matching.results_sent == 1
    assert matching.fetch_timeouts == 0
    results = harness.received["client"]
    assert results[0].kind is RecordKind.RESULT
    assert results[0].frame_number == 7


def test_matching_times_out_without_state():
    harness = Harness()
    sift = harness.make(SiftService, "sift", 6000)
    matching = harness.make(MatchingService, "matching", 6200,
                            fetch_timeout_s=0.02)
    work = harness.record(step="matching", frame=42)
    work.sift_address = sift.address
    harness.inject(matching, work)
    harness.sim.run()
    assert matching.fetch_timeouts == 1
    assert matching.results_sent == 0
    assert "client" not in harness.received


def test_matching_without_sift_address_drops_frame():
    harness = Harness()
    matching = harness.make(MatchingService, "matching", 6200)
    harness.inject(matching, harness.record(step="matching"))
    harness.sim.run()
    assert matching.results_sent == 0
    assert matching.stats.processed == 1  # handled, not crashed


def test_stateless_sift_packs_frame():
    harness = Harness()
    sift = harness.make(StatelessSiftService, "sift", 6000)
    harness.sink("encoding", 6100)
    harness.inject(sift, harness.record(step="sift"))
    harness.sim.run()
    record = harness.received["encoding"][0]
    assert record.size_bytes == 480 * 1024
    assert record.sift_address is None
    assert record.meta.get("packed_state") is True


def test_stateless_matching_replies_directly():
    harness = Harness()
    matching = harness.make(StatelessMatchingService, "matching", 6200)
    harness.inject(matching, harness.record(step="matching", frame=11))
    harness.sim.run()
    assert matching.results_sent == 1
    assert harness.received["client"][0].frame_number == 11
