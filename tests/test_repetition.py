"""Tests for seed replication and confidence intervals."""

import pytest

from repro.experiments.repetition import (
    ReplicatedMetric,
    replicate,
    replicate_experiment,
    significantly_better,
)
from repro.experiments.runner import run_scatterpp_experiment
from repro.scatter.config import baseline_configs


def test_replicated_metric_statistics():
    metric = ReplicatedMetric("fps", (10.0, 12.0, 14.0))
    assert metric.mean == pytest.approx(12.0)
    assert metric.std == pytest.approx(2.0)
    assert metric.ci95_halfwidth > 0
    low, high = metric.interval
    assert low < 12.0 < high


def test_single_value_has_zero_interval():
    metric = ReplicatedMetric("fps", (10.0,))
    assert metric.std == 0.0
    assert metric.ci95_halfwidth == 0.0
    assert metric.interval == (10.0, 10.0)


def test_identical_values_zero_spread():
    metric = ReplicatedMetric("fps", (5.0, 5.0, 5.0))
    assert metric.std == 0.0
    assert metric.ci95_halfwidth == 0.0


def test_significantly_better_logic():
    high = ReplicatedMetric("fps", (20.0, 21.0, 22.0))
    low = ReplicatedMetric("fps", (10.0, 11.0, 12.0))
    touching = ReplicatedMetric("fps", (18.0, 21.0, 24.0))
    assert significantly_better(high, low)
    assert not significantly_better(low, high)
    assert not significantly_better(touching, high)


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate(lambda seed: {}, seeds=())


def test_replicate_runs_all_seeds():
    seen = []

    def fake_run(seed):
        seen.append(seed)
        return {"fps": 10.0 + seed, "success_rate": 0.5,
                "e2e_ms": 40.0, "jitter_ms": 2.0, "qoe_mos": 3.0}

    metrics = replicate(fake_run, seeds=(1, 2, 3))
    assert seen == [1, 2, 3]
    assert metrics["fps"].values == (11.0, 12.0, 13.0)
    assert set(metrics) == {"fps", "success_rate", "e2e_ms",
                            "jitter_ms", "qoe_mos"}


def test_replicate_experiment_end_to_end():
    metrics = replicate_experiment(baseline_configs()["C1"],
                                   num_clients=2, duration_s=6.0,
                                   seeds=(0, 1, 2))
    fps = metrics["fps"]
    assert len(fps.values) == 3
    assert fps.mean > 0
    # Different seeds produce different (but nearby) outcomes.
    assert fps.std > 0
    assert fps.ci95_halfwidth < fps.mean


def test_scatterpp_significantly_beats_scatter():
    """The headline claim survives seed variation."""
    seeds = (0, 1, 2)
    scatter = replicate_experiment(baseline_configs()["C1"],
                                   num_clients=4, duration_s=8.0,
                                   seeds=seeds)
    scatterpp = replicate_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=8.0,
        seeds=seeds, runner=run_scatterpp_experiment)
    assert significantly_better(scatterpp["fps"], scatter["fps"])
