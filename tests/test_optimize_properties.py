"""Property suite for the placement/autoscaler search loop.

Pins the optimizer contracts the PR's acceptance gate leans on:

* **Pareto-front soundness** — no front member strictly dominates
  another, and every archive entry left off the front is dominated by
  some front member;
* **front monotonicity** — ranking happens over the archive of every
  genome ever evaluated, so each generation's best capacity (and its
  whole front, under weak dominance) never regresses;
* **operator closure** — mutation and crossover only ever emit
  schedulable genomes (replica bounds, known machines, memory fit),
  falling back to a schedulable parent when eight draws fail;
* **encode/decode totality** — every genome the operators can produce
  round-trips through its ``opt:`` spec string bit-identically;
* **determinism** — same seed ⇒ bit-identical front digest, with the
  oracle swapped for a deterministic stub (cheap) and with the real
  campaign oracle at worker counts 0 and 4 (one slow test);
* **oracle dedup** — no genome is evaluated twice within a run, and a
  rerun against the same cell cache replays entirely from cache.

All hypothesis tests run derandomized: the suite is part of tier-1 and
must never flake.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestra.optimize import (Genome, Objectives,
                                      OptimizeConfig, PlacementSearch,
                                      SearchSpace, dominates,
                                      pareto_front, run_search,
                                      static_seed_genomes)
from repro.scatter.config import PIPELINE_ORDER

seeds = st.integers(min_value=0, max_value=2**32 - 1)


# ----------------------------------------------------------------------
# Deterministic stub oracle: objectives derived from the spec string
# alone, so search-loop properties run without the simulator.
# ----------------------------------------------------------------------
class StubOracle:
    """Hash-derived objectives; records every spec it is asked about."""

    def __init__(self):
        self.calls = []

    def evaluate(self, specs):
        self.calls.extend(specs)
        results = {}
        provenance = []
        for spec in specs:
            rng = random.Random(spec)
            results[spec] = Objectives(
                capacity=rng.randrange(0, 5),
                p95_ms=round(rng.uniform(40.0, 120.0), 3),
                joules_per_frame=round(rng.uniform(2.0, 9.0), 3),
                cost_units=round(rng.uniform(8.0, 30.0), 3))
            provenance.append({"genome": spec, "clients": 0,
                               "seed": 0, "fingerprint": "stub"})
        return results, provenance

    def cache_report(self):
        return None


def stub_search(seed, *, population=6, generations=3):
    config = OptimizeConfig(seed=seed, population=population,
                            generations=generations)
    search = PlacementSearch(config, oracle=StubOracle())
    return search, search.run()


# ----------------------------------------------------------------------
# Pareto machinery
# ----------------------------------------------------------------------
@settings(max_examples=50, derandomize=True, deadline=None)
@given(seeds)
def test_front_is_mutually_nondominated(seed):
    __, report = stub_search(seed)
    vectors = [(e["genome"],
                Objectives(**e["objectives"]).vector())
               for e in report.front]
    assert vectors, "front must be non-empty"
    for spec_a, a in vectors:
        for spec_b, b in vectors:
            if spec_a != spec_b:
                assert not dominates(a, b), (spec_a, spec_b)


@settings(max_examples=30, derandomize=True, deadline=None)
@given(seeds)
def test_off_front_entries_are_dominated(seed):
    """pareto_front keeps exactly the nondominated archive subset."""
    rng = random.Random(seed)
    space = SearchSpace()
    oracle = StubOracle()
    specs = [space.random_genome(rng).encode() for __ in range(12)]
    archive, __ = oracle.evaluate(specs)
    front = pareto_front(archive)
    front_specs = {spec for spec, __ in front}
    for spec, objectives in archive.items():
        if spec in front_specs:
            continue
        assert any(dominates(member.vector(), objectives.vector())
                   for __, member in front), spec


@settings(max_examples=30, derandomize=True, deadline=None)
@given(seeds)
def test_front_monotonically_non_worsening(seed):
    """Each generation's front weakly dominates the previous one."""
    __, report = stub_search(seed)
    previous = None
    for entry in report.generations:
        front = [Objectives(**e["objectives"]).vector()
                 for e in entry["front"]]
        if previous is not None:
            assert entry["best_capacity"] >= previous["best_capacity"]
            for old in previous["vectors"]:
                assert any(
                    all(x <= y for x, y in zip(new, old))
                    for new in front), (old, entry["generation"])
        previous = {"best_capacity": entry["best_capacity"],
                    "vectors": front}


# ----------------------------------------------------------------------
# Operator closure + encode/decode totality
# ----------------------------------------------------------------------
@settings(max_examples=50, derandomize=True, deadline=None)
@given(seeds)
def test_mutation_closed_over_schedulable(seed):
    rng = random.Random(seed)
    space = SearchSpace()
    genome = space.random_genome(rng)
    assert space.is_schedulable(genome)
    for __ in range(25):
        genome = space.mutate(genome, rng)
        assert space.is_schedulable(genome)
        assert Genome.decode(genome.encode()) == genome


@settings(max_examples=50, derandomize=True, deadline=None)
@given(seeds)
def test_crossover_closed_over_schedulable(seed):
    rng = random.Random(seed)
    space = SearchSpace()
    a, b = space.random_genome(rng), space.random_genome(rng)
    for __ in range(25):
        child = space.crossover(a, b, rng)
        assert space.is_schedulable(child)
        assert Genome.decode(child.encode()) == child
        a, b = b, child


@settings(max_examples=30, derandomize=True, deadline=None)
@given(seeds)
def test_operators_respect_tight_memory(seed):
    """With a tight memory override the operators still never emit an
    unschedulable genome (they fall back to a schedulable parent).
    One replica of every stage needs 4.9 GB, so 6 GB admits the
    single-replica pipeline but rejects most replica additions."""
    rng = random.Random(seed)
    space = SearchSpace(machines=("e1",),
                        memory_gb={"e1": 6.0})
    genome = space.random_genome(rng)
    assert space.is_schedulable(genome)
    for __ in range(10):
        mutated = space.mutate(genome, rng)
        assert space.is_schedulable(mutated)
        child = space.crossover(genome, mutated, rng)
        assert space.is_schedulable(child)
        genome = mutated


def test_static_seeds_are_schedulable_and_distinct():
    space = SearchSpace()
    genomes = static_seed_genomes(space)
    assert len(genomes) >= 4, "paper statics must survive the filter"
    specs = [g.encode() for g in genomes]
    assert len(set(specs)) == len(specs)
    for genome in genomes:
        assert space.is_schedulable(genome)
        assert len(genome.machines) == len(PIPELINE_ORDER)


# ----------------------------------------------------------------------
# Determinism + dedup (stub oracle)
# ----------------------------------------------------------------------
@settings(max_examples=20, derandomize=True, deadline=None)
@given(seeds)
def test_same_seed_bit_identical_front(seed):
    __, first = stub_search(seed)
    __, second = stub_search(seed)
    assert first.front == second.front
    assert first.front_digest() == second.front_digest()
    assert first.generations == second.generations


@settings(max_examples=20, derandomize=True, deadline=None)
@given(seeds)
def test_no_genome_evaluated_twice(seed):
    search, report = stub_search(seed)
    oracle = search.oracle
    assert len(oracle.calls) == len(set(oracle.calls))
    assert report.evaluations == len(oracle.calls)


@settings(max_examples=10, derandomize=True, deadline=None)
@given(seeds)
def test_budget_is_a_hard_cap(seed):
    config = OptimizeConfig(seed=seed, population=6, generations=4,
                            budget=9)
    search = PlacementSearch(config, oracle=StubOracle())
    report = search.run()
    assert report.evaluations <= 9
    assert len(search.oracle.calls) <= 9


# ----------------------------------------------------------------------
# Real oracle: worker-count bit-identity and cache dedup (slow-ish,
# so one tiny configuration each).
# ----------------------------------------------------------------------
TINY = dict(population=3, generations=1, ladder=(1,),
            duration_s=1.5, machines=("e1",), scaler=False)


def test_workers_zero_and_four_identical_front():
    serial = run_search(OptimizeConfig(seed=7, workers=0, **TINY))
    sharded = run_search(OptimizeConfig(seed=7, workers=4, **TINY))
    assert serial.front == sharded.front
    assert serial.front_digest() == sharded.front_digest()
    assert serial.oracle_calls == sharded.oracle_calls


def test_cell_cache_dedups_across_runs(tmp_path):
    config = OptimizeConfig(seed=7, **TINY)
    cold = run_search(config, cache=str(tmp_path))
    assert cold.cache["misses"] == len(cold.oracle_calls)
    assert cold.cache["hits"] == 0
    warm = run_search(config, cache=str(tmp_path))
    assert warm.cache["misses"] == 0
    assert warm.cache["hits"] == len(warm.oracle_calls)
    assert warm.front == cold.front
    assert warm.front_digest() == cold.front_digest()
