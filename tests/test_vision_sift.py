"""Unit tests for the SIFT extractor."""

import numpy as np
import pytest

from repro.vision.sift import SiftExtractor


def blob_image(size=64, centres=((20, 20), (44, 40)), radius=4.0):
    """Bright Gaussian blobs on a dark background — ideal DoG bait."""
    ys, xs = np.mgrid[:size, :size].astype(float)
    image = np.zeros((size, size))
    for cy, cx in centres:
        image += np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2)
                        / (2 * radius ** 2))
    return np.clip(image, 0.0, 1.0)


def test_detects_blobs_near_centres():
    image = blob_image()
    extractor = SiftExtractor(contrast_threshold=0.01)
    keypoints, __ = extractor.detect(image)
    assert keypoints, "no keypoints found on an easy image"
    centres = np.array([[20, 20], [44, 40]], dtype=float)
    found = np.array([[kp.y, kp.x] for kp in keypoints])
    for centre in centres:
        distances = np.linalg.norm(found - centre, axis=1)
        assert distances.min() < 4.0, (
            f"no keypoint within 4 px of blob at {centre}")


def test_flat_image_has_no_keypoints():
    extractor = SiftExtractor()
    keypoints, __ = extractor.detect(np.full((64, 64), 0.5))
    assert keypoints == []


def test_max_keypoints_cap():
    rng = np.random.default_rng(0)
    image = rng.random((96, 96))
    extractor = SiftExtractor(contrast_threshold=0.005, max_keypoints=10)
    keypoints, __ = extractor.detect(image)
    assert len(keypoints) <= 10
    # Kept keypoints are the strongest responses, sorted descending.
    responses = [kp.response for kp in keypoints]
    assert responses == sorted(responses, reverse=True)


def test_descriptors_shape_and_norm():
    image = blob_image()
    extractor = SiftExtractor(contrast_threshold=0.01)
    keypoints, descriptors = extractor.detect_and_describe(image)
    assert descriptors.shape == (len(keypoints), 128)
    norms = np.linalg.norm(descriptors, axis=1)
    # Unit-normalized (or zero for degenerate patches).
    for norm in norms:
        assert norm == pytest.approx(1.0, abs=1e-6) or norm < 1e-6


def test_descriptor_translation_invariance():
    """The same blob shifted in the frame gives a near-identical descriptor."""
    extractor = SiftExtractor(contrast_threshold=0.01, max_keypoints=1)
    image_a = blob_image(centres=((24, 24),))
    image_b = blob_image(centres=((24, 36),))
    __, desc_a = extractor.detect_and_describe(image_a)
    __, desc_b = extractor.detect_and_describe(image_b)
    assert desc_a.shape[0] == 1 and desc_b.shape[0] == 1
    distance = np.linalg.norm(desc_a[0] - desc_b[0])
    assert distance < 0.35


def test_descriptors_discriminate_different_patterns():
    rng = np.random.default_rng(3)
    extractor = SiftExtractor(contrast_threshold=0.01, max_keypoints=1)
    blob = blob_image(centres=((32, 32),))
    texture = rng.random((64, 64))
    __, desc_blob = extractor.detect_and_describe(blob)
    __, desc_texture = extractor.detect_and_describe(texture)
    if desc_blob.shape[0] and desc_texture.shape[0]:
        assert np.linalg.norm(desc_blob[0] - desc_texture[0]) > 0.3


def test_keypoint_scale_grows_with_blob_size():
    small = blob_image(centres=((32, 32),), radius=3.0)
    large = blob_image(centres=((32, 32),), radius=6.0)
    extractor = SiftExtractor(contrast_threshold=0.005, max_keypoints=1)
    kp_small, __ = extractor.detect(small)
    kp_large, __ = extractor.detect(large)
    assert kp_small and kp_large
    assert kp_large[0].sigma > kp_small[0].sigma


def test_parameter_validation():
    with pytest.raises(ValueError):
        SiftExtractor(contrast_threshold=0.0)
    with pytest.raises(ValueError):
        SiftExtractor(edge_ratio=1.0)


def test_detection_is_deterministic():
    image = blob_image()
    extractor = SiftExtractor(contrast_threshold=0.01)
    first, __ = extractor.detect(image)
    second, __ = extractor.detect(image)
    assert [(kp.x, kp.y, kp.sigma) for kp in first] == \
           [(kp.x, kp.y, kp.sigma) for kp in second]
