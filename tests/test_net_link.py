"""Unit tests for Link and Netem."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.netem import (
    Netem,
    lte_profile,
    nr5g_profile,
    wifi6_profile,
)
from repro.sim import Simulator


def make_link(**kwargs):
    sim = Simulator()
    defaults = dict(latency_s=0.001, bandwidth_bps=1e9,
                    rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return sim, Link(sim, "a", "b", **defaults)


def test_delay_is_latency_plus_serialization():
    __, link = make_link(latency_s=0.002, bandwidth_bps=1e6)
    delay = link.transmit(1000)  # 8000 bits at 1 Mbps = 8 ms
    assert delay == pytest.approx(0.002 + 0.008)


def test_zero_size_packet_costs_only_latency():
    __, link = make_link(latency_s=0.003)
    assert link.transmit(0) == pytest.approx(0.003)


def test_fifo_queueing_at_sender():
    __, link = make_link(latency_s=0.0, bandwidth_bps=1e6)
    first = link.transmit(1000)   # serializes 0..8 ms
    second = link.transmit(1000)  # queues behind: 8..16 ms
    assert first == pytest.approx(0.008)
    assert second == pytest.approx(0.016)


def test_queue_drains_as_time_advances():
    sim, link = make_link(latency_s=0.0, bandwidth_bps=1e6)
    link.transmit(1000)
    sim.schedule(0.008, lambda: None)
    sim.run()
    assert link.queue_delay == pytest.approx(0.0)
    assert link.transmit(1000) == pytest.approx(0.008)


def test_loss_drops_packets():
    __, link = make_link(loss=1.0)
    assert link.transmit(100) is None
    assert link.stats.packets_dropped == 1


def test_loss_rate_statistics():
    __, link = make_link(loss=0.3)
    n = 5000
    dropped = sum(1 for _ in range(n) if link.transmit(10) is None)
    assert dropped / n == pytest.approx(0.3, abs=0.03)


def test_jitter_adds_nonnegative_delay():
    __, link = make_link(latency_s=0.001, jitter_s=0.0005)
    base = 0.001 + 10 * 8 / 1e9
    for _ in range(100):
        delay = link.transmit(10)
        assert delay >= base


def test_stats_accumulate():
    __, link = make_link()
    link.transmit(500)
    link.transmit(700)
    assert link.stats.packets_sent == 2
    assert link.stats.bytes_sent == 1200


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "a", "b", latency_s=-1, bandwidth_bps=1e9)
    with pytest.raises(ValueError):
        Link(sim, "a", "b", latency_s=0, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(sim, "a", "b", latency_s=0, bandwidth_bps=1, loss=1.5)


def test_netem_extra_delay_constant():
    netem = Netem(delay_s=0.020)
    rng = np.random.default_rng(0)
    assert netem.extra_delay(rng) == pytest.approx(0.020)


def test_netem_oscillation_probabilistic():
    netem = Netem(delay_s=0.0, oscillation_s=0.010, oscillation_prob=0.2)
    rng = np.random.default_rng(1)
    draws = [netem.extra_delay(rng) for _ in range(5000)]
    oscillated = sum(1 for d in draws if d > 0)
    assert oscillated / len(draws) == pytest.approx(0.2, abs=0.02)
    assert all(d in (0.0, 0.010) for d in draws)


def test_netem_loss_draw():
    netem = Netem(loss=1.0)
    rng = np.random.default_rng(0)
    assert netem.drops(rng)
    assert not Netem(loss=0.0).drops(rng)


def test_netem_validation():
    with pytest.raises(ValueError):
        Netem(delay_s=-0.1)
    with pytest.raises(ValueError):
        Netem(loss=2.0)
    with pytest.raises(ValueError):
        Netem(oscillation_prob=-0.5)


def test_netem_applied_to_link_delay_and_loss():
    __, link = make_link(latency_s=0.001)
    link.netem = Netem(delay_s=0.040)
    delay = link.transmit(10)
    assert delay >= 0.041

    __, lossy = make_link(latency_s=0.001)
    lossy.netem = Netem(loss=1.0)
    assert lossy.transmit(10) is None


def test_paper_access_profiles():
    lte = lte_profile()
    assert lte.delay_s == pytest.approx(0.020)  # 40 ms RTT one-way
    assert lte.loss == pytest.approx(0.0008)
    assert nr5g_profile().delay_s == pytest.approx(0.005)
    assert wifi6_profile().delay_s == pytest.approx(0.0025)
    for profile in (lte, nr5g_profile(), wifi6_profile()):
        assert profile.oscillation_s == pytest.approx(0.010)
        assert profile.oscillation_prob == pytest.approx(0.20)
