"""Unit tests for LSH, matching and pose estimation."""

import numpy as np
import pytest

from repro.vision.lsh import LshIndex
from repro.vision.matching import match_descriptors
from repro.vision.pose import (
    estimate_homography_dlt,
    estimate_homography_ransac,
    project_corners,
)


# ----------------------------------------------------------------------
# LSH
# ----------------------------------------------------------------------
def test_lsh_exact_query_finds_itself():
    rng = np.random.default_rng(0)
    index = LshIndex(dimension=32, seed=0)
    vectors = {f"object{i}": rng.normal(0, 1, 32) for i in range(10)}
    for key, vector in vectors.items():
        index.insert(key, vector)
    for key, vector in vectors.items():
        matches = index.query(vector, k=1)
        assert matches and matches[0].key == key
        assert matches[0].similarity == pytest.approx(1.0)


def test_lsh_near_query_ranks_nearest_first():
    rng = np.random.default_rng(1)
    index = LshIndex(dimension=64, n_tables=6, n_bits=8, seed=1)
    target = rng.normal(0, 1, 64)
    index.insert("target", target)
    for i in range(20):
        index.insert(f"noise{i}", rng.normal(0, 1, 64))
    noisy = target + rng.normal(0, 0.05, 64)
    matches = index.query(noisy, k=3)
    assert matches[0].key == "target"


def test_lsh_reinsert_replaces():
    index = LshIndex(dimension=4, seed=0)
    index.insert("a", np.array([1.0, 0, 0, 0]))
    index.insert("a", np.array([0.0, 1, 0, 0]))
    assert len(index) == 1
    matches = index.query(np.array([0.0, 1, 0, 0]), k=1)
    assert matches[0].similarity == pytest.approx(1.0)


def test_lsh_remove():
    index = LshIndex(dimension=4, seed=0)
    index.insert("a", np.array([1.0, 0, 0, 0]))
    index.remove("a")
    assert len(index) == 0
    assert index.query(np.array([1.0, 0, 0, 0]), k=1) == []
    index.remove("ghost")  # no-op


def test_lsh_zero_query_returns_empty():
    index = LshIndex(dimension=4, seed=0)
    index.insert("a", np.ones(4))
    assert index.query(np.zeros(4)) == []


def test_lsh_min_similarity_filter():
    index = LshIndex(dimension=4, n_tables=8, n_bits=2, seed=0)
    index.insert("pos", np.array([1.0, 0, 0, 0]))
    index.insert("neg", np.array([-1.0, 0, 0, 0]))
    matches = index.query(np.array([1.0, 0, 0, 0]), k=5,
                          min_similarity=0.0)
    assert [m.key for m in matches] == ["pos"]


def test_lsh_validation():
    with pytest.raises(ValueError):
        LshIndex(dimension=0)
    with pytest.raises(ValueError):
        LshIndex(dimension=4, n_tables=0)
    index = LshIndex(dimension=4)
    with pytest.raises(ValueError):
        index.insert("bad", np.zeros(5))


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------
def test_match_identical_descriptors():
    rng = np.random.default_rng(0)
    reference = rng.normal(0, 1, (10, 16))
    matches = match_descriptors(reference, reference, ratio=0.9)
    assert len(matches) == 10
    for match in matches:
        assert match.query_index == match.reference_index
        assert match.distance == pytest.approx(0.0, abs=1e-6)


def test_ratio_test_rejects_ambiguous():
    # Two nearly identical reference descriptors: the ratio test must
    # reject matches that cannot discriminate between them.
    reference = np.array([[1.0, 0.0], [1.0, 0.001]])
    query = np.array([[1.0, 0.0005]])
    assert match_descriptors(query, reference, ratio=0.8) == []


def test_max_distance_cap():
    reference = np.array([[0.0, 0.0]])
    query = np.array([[10.0, 0.0]])
    assert match_descriptors(query, reference, max_distance=5.0) == []
    assert len(match_descriptors(query, reference,
                                 max_distance=20.0)) == 1


def test_empty_inputs():
    assert match_descriptors(np.empty((0, 8)), np.ones((3, 8))) == []
    assert match_descriptors(np.ones((3, 8)), np.empty((0, 8))) == []


def test_match_validation():
    with pytest.raises(ValueError):
        match_descriptors(np.ones((2, 4)), np.ones((2, 5)))
    with pytest.raises(ValueError):
        match_descriptors(np.ones((2, 4)), np.ones((2, 4)), ratio=0.0)


# ----------------------------------------------------------------------
# Pose
# ----------------------------------------------------------------------
def square_points():
    return np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0],
                     [5.0, 3.0], [2.0, 8.0], [7.0, 6.0], [1.0, 4.0]])


def affine_map(points, *, scale=2.0, angle=0.3, tx=5.0, ty=-2.0):
    rotation = np.array([[np.cos(angle), -np.sin(angle)],
                         [np.sin(angle), np.cos(angle)]])
    return points @ (scale * rotation).T + np.array([tx, ty])


def test_dlt_recovers_affine_homography():
    src = square_points()
    dst = affine_map(src)
    matrix = estimate_homography_dlt(src, dst)
    assert matrix is not None
    mapped = np.hstack([src, np.ones((len(src), 1))]) @ matrix.T
    mapped = mapped[:, :2] / mapped[:, 2:3]
    assert np.allclose(mapped, dst, atol=1e-6)


def test_dlt_degenerate_collinear_returns_none():
    src = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
    dst = src * 2.0
    assert estimate_homography_dlt(src, dst) is None


def test_dlt_validation():
    with pytest.raises(ValueError):
        estimate_homography_dlt(np.zeros((3, 2)), np.zeros((3, 2)))
    with pytest.raises(ValueError):
        estimate_homography_dlt(np.zeros((4, 2)), np.zeros((5, 2)))


def test_ransac_tolerates_outliers():
    rng = np.random.default_rng(0)
    src = rng.uniform(0, 50, (40, 2))
    dst = affine_map(src)
    # Corrupt 30% of the correspondences.
    corrupt = rng.choice(40, size=12, replace=False)
    dst_noisy = dst.copy()
    dst_noisy[corrupt] += rng.uniform(30, 60, (12, 2))
    result = estimate_homography_ransac(src, dst_noisy, threshold=2.0,
                                        seed=0)
    assert result is not None
    assert result.num_inliers >= 28
    assert not result.inliers[corrupt].any()
    assert result.mean_error < 1.0


def test_ransac_returns_none_without_consensus():
    rng = np.random.default_rng(1)
    src = rng.uniform(0, 50, (20, 2))
    dst = rng.uniform(0, 50, (20, 2))
    result = estimate_homography_ransac(src, dst, threshold=0.5,
                                        min_inliers=10, seed=0)
    assert result is None


def test_ransac_too_few_points():
    assert estimate_homography_ransac(np.zeros((3, 2)),
                                      np.zeros((3, 2))) is None


def test_project_corners_identity():
    corners = project_corners(np.eye(3), (10, 20))
    expected = np.array([[0, 0], [19, 0], [19, 9], [0, 9]], dtype=float)
    assert np.allclose(corners, expected)


def test_project_corners_translation():
    matrix = np.array([[1.0, 0, 5], [0, 1.0, 7], [0, 0, 1.0]])
    corners = project_corners(matrix, (4, 4))
    assert np.allclose(corners[0], [5, 7])
