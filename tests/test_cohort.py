"""Unit tests for the cohort subsystem (loads, spec, ledger, engine).

The cross-cutting contracts (all-tracer bit-equivalence, golden
digests, hybrid determinism) live in ``test_cohort_equivalence.py``;
this file covers the pieces in isolation.
"""

import numpy as np
import pytest

from repro.cohort import (CohortEngine, CohortLedger, CohortSpec,
                          LOAD_PROCESSES, PipelineCapacityModel,
                          build_load_process,
                          check_cohort_conservation,
                          merge_cohort_dicts)
from repro.cohort.report import CohortReport
from repro.flow import default_flow_config
from repro.flow.credits import (CreditAdvertisement, CreditLedger,
                                TokenBucket)
from repro.flow.invariants import ConservationError
from repro.metrics.sketch import PercentileSketch


# ----------------------------------------------------------------------
# Load processes
# ----------------------------------------------------------------------
def offered(process, **kwargs):
    defaults = dict(now=0.0, tick_s=0.1, members=100, fps=30.0,
                    rng=None)
    defaults.update(kwargs)
    return process.offered_frames(**defaults)


def test_constant_load_offers_full_rate():
    process = build_load_process("constant")
    assert offered(process) == pytest.approx(300.0)
    assert offered(process, now=55.0) == pytest.approx(300.0)


def test_ramp_load_activates_linearly():
    process = build_load_process("ramp", ramp_s=10.0)
    assert offered(process, now=0.0) == pytest.approx(0.0)
    assert offered(process, now=5.0) == pytest.approx(150.0)
    assert offered(process, now=10.0) == pytest.approx(300.0)
    assert offered(process, now=60.0) == pytest.approx(300.0)


def test_diurnal_load_oscillates_between_floor_and_full():
    process = build_load_process("diurnal", period_s=60.0, floor=0.25)
    values = [offered(process, now=t) for t in np.linspace(0, 60, 61)]
    assert min(values) >= 0.25 * 300.0 - 1e-6
    assert max(values) <= 300.0 + 1e-6
    assert max(values) > min(values)  # actually oscillates


def test_poisson_load_draws_from_stream_deterministically():
    process = build_load_process("poisson")
    assert process.uses_rng
    first = offered(process, rng=np.random.default_rng(5))
    second = offered(process, rng=np.random.default_rng(5))
    assert first == second
    assert first == pytest.approx(300.0, rel=0.5)
    with pytest.raises(ValueError):
        offered(process, rng=None)
    assert offered(process, members=0,
                   rng=np.random.default_rng(5)) == 0.0


def test_load_registry_and_validation():
    assert set(LOAD_PROCESSES) == {"constant", "ramp", "diurnal",
                                   "poisson"}
    with pytest.raises(ValueError):
        build_load_process("flash-mob")
    with pytest.raises(ValueError):
        build_load_process("ramp", ramp_s=0.0)
    with pytest.raises(ValueError):
        build_load_process("diurnal", floor=1.5)


# ----------------------------------------------------------------------
# CohortSpec
# ----------------------------------------------------------------------
def test_spec_macro_members_and_dict():
    spec = CohortSpec(size=1000, tracers=4)
    assert spec.macro_members == 996
    payload = spec.as_dict()
    assert payload["size"] == 1000
    assert payload["macro_members"] == 996
    assert payload["load"] == "constant"


@pytest.mark.parametrize("kwargs", [
    dict(size=0, tracers=1),
    dict(size=10, tracers=0),
    dict(size=10, tracers=11),
    dict(size=10, tracers=2, member_fps=0.0),
    dict(size=10, tracers=2, tick_s=-0.1),
    dict(size=10, tracers=2, load="nope"),
])
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        CohortSpec(**kwargs)


# ----------------------------------------------------------------------
# Aggregate flow primitives (take_many)
# ----------------------------------------------------------------------
def test_token_bucket_take_many_matches_sequential_takes():
    aggregate = TokenBucket(100.0, 10)
    sequential = TokenBucket(100.0, 10)
    taken = sum(1 for _ in range(25) if sequential.take(1.0))
    assert aggregate.take_many(1.0, 25) == taken
    assert aggregate.granted == sequential.granted
    assert aggregate.denied == sequential.denied
    assert aggregate.take_many(1.0, 0) == 0
    with pytest.raises(ValueError):
        aggregate.take_many(1.0, -1)


def test_token_bucket_take_many_refills_over_time():
    bucket = TokenBucket(50.0, 100)
    assert bucket.take_many(0.0, 200) == 100  # initial burst
    assert bucket.take_many(1.0, 200) == 50  # one second of refill
    # Refill is clamped at burst: idle time does not bank past it.
    assert bucket.take_many(10.0, 200) == 100


def test_credit_ledger_take_many_cold_start_grants_all():
    ledger = CreditLedger("primary")
    assert ledger.take_many(0.0, 1000) == 1000
    assert ledger.shortfalls == 0


def test_credit_ledger_take_many_drains_richest_first():
    ledger = CreditLedger("primary", ttl_s=10.0)
    ledger.update(CreditAdvertisement("primary", "a", 5, 1, 0.0), 0.0)
    ledger.update(CreditAdvertisement("primary", "b", 20, 1, 0.0), 0.0)
    assert ledger.take_many(0.0, 18) == 18
    # richest (b: 20) drained first, a untouched.
    assert ledger.available(0.0) == 7
    assert ledger.take_many(0.0, 50) == 7
    assert ledger.shortfalls == 43
    assert ledger.available(0.0) == 0


def test_credit_ledger_take_many_zero_and_negative():
    ledger = CreditLedger("primary")
    assert ledger.take_many(0.0, 0) == 0
    with pytest.raises(ValueError):
        ledger.take_many(0.0, -5)


# ----------------------------------------------------------------------
# Ledger conservation
# ----------------------------------------------------------------------
def test_ledger_balance_zero_when_consistent():
    ledger = CohortLedger(offered=100, shed_credits=10, paced=5,
                          rejected=5, served=70, dropped_stale=8,
                          pending=2)
    assert ledger.balance == 0
    assert check_cohort_conservation(ledger) is ledger
    assert ledger.as_dict()["balance"] == 0


def test_ledger_conservation_raises_on_imbalance():
    with pytest.raises(ConservationError):
        check_cohort_conservation(CohortLedger(offered=10, served=5))


def test_ledger_conservation_raises_on_negative_counter():
    ledger = CohortLedger(offered=0, served=5, pending=-5)
    with pytest.raises(ConservationError):
        check_cohort_conservation(ledger)


# ----------------------------------------------------------------------
# Report merging across shards
# ----------------------------------------------------------------------
def shard_report(served, latency_s):
    latency = PercentileSketch()
    latency.insert(latency_s, served)
    wait = PercentileSketch()
    wait.insert(0.010, served)
    return CohortReport(
        spec=CohortSpec(size=100, tracers=2).as_dict(),
        ledger=CohortLedger(offered=served, served=served),
        duration_s=10.0, bottleneck_service="sift",
        bottleneck_capacity_fps=120.0, tracer_mean_fps=22.0,
        latency=latency, queue_wait=wait).as_dict()


def test_merge_cohort_dicts_folds_ledgers_and_sketches():
    merged = merge_cohort_dicts([shard_report(100, 0.050),
                                 shard_report(300, 0.090)])
    assert merged["ledger"]["served"] == 400
    assert merged["ledger"]["balance"] == 0
    assert merged["latency_ms"]["count"] == 400
    assert merged["latency_ms"]["maximum"] == pytest.approx(90.0)
    # The merged payload still carries mergeable sketches.
    revived = PercentileSketch.from_dict(merged["latency_sketch"])
    assert revived.count == 400


def test_merge_cohort_dicts_empty_and_single():
    assert merge_cohort_dicts([]) is None
    assert merge_cohort_dicts([None]) is None
    single = shard_report(10, 0.020)
    merged = merge_cohort_dicts([single])
    assert merged["ledger"] == single["ledger"]
    assert merged["latency_sketch"] == single["latency_sketch"]


# ----------------------------------------------------------------------
# Capacity model and engine (against a real deployment)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployed():
    from repro.experiments.runner import _build
    from repro.scatter.config import baseline_configs
    from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs

    flow = default_flow_config()
    sim, testbed, orchestrator, pipeline, clients = _build(
        baseline_configs()["C1"], 1, 0, None,
        scatterpp_pipeline_kwargs(flow=flow), flow=flow)
    return sim, pipeline, flow


def test_capacity_model_covers_every_service(deployed):
    __, pipeline, flow = deployed
    model = PipelineCapacityModel(pipeline, flow=flow)
    assert set(model.capacity_fps) == {"primary", "sift", "encoding",
                                       "lsh", "matching"}
    assert all(rate > 0 for rate in model.capacity_fps.values())
    assert model.bottleneck_fps == min(model.capacity_fps.values())
    # SIFT is the paper's slowest stage; with one replica each it is
    # the bottleneck.
    assert model.bottleneck_service == "sift"
    assert model.base_latency_s > 0


def test_batching_raises_modeled_capacity(deployed):
    __, pipeline, flow = deployed
    batched = PipelineCapacityModel(pipeline, flow=flow)
    unbatched = PipelineCapacityModel(pipeline, flow=None)
    assert flow.batch_max > 1
    assert batched.bottleneck_fps > unbatched.bottleneck_fps


def test_engine_validation(deployed):
    sim, pipeline, flow = deployed
    spec = CohortSpec(size=100, tracers=1)
    with pytest.raises(ValueError):
        CohortEngine(sim, spec, pipeline, threshold_s=0.0)
    with pytest.raises(ValueError):  # poisson needs an RNG stream
        CohortEngine(sim, CohortSpec(size=100, tracers=1,
                                     load="poisson"), pipeline)
    engine = CohortEngine(sim, spec, pipeline, flow=flow)
    with pytest.raises(ValueError):
        engine.start(0.0)
    engine.start(1.0)
    with pytest.raises(RuntimeError):
        engine.start(1.0)


def test_all_tracer_engine_spawns_nothing(deployed):
    sim, pipeline, flow = deployed
    engine = CohortEngine(sim, CohortSpec(size=3, tracers=3),
                          pipeline, flow=flow)
    before = sim.now
    engine.start(5.0)
    sim.run(until=before + 5.0)
    assert engine.ledger.offered == 0
    assert engine.ledger.as_dict()["balance"] == 0
    assert engine.latency.count == 0
