"""Integration tests: scAtteR end to end on the simulated testbed."""

import pytest

from repro.cluster.machine import GB
from repro.experiments.runner import run_scatter_experiment
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.config import (
    baseline_configs,
    scaling_config,
    uniform_config,
)
from repro.scatter.pipeline import ScatterPipeline
from repro.cluster.testbed import build_paper_testbed
from repro.sim import RngRegistry, Simulator


@pytest.fixture(scope="module")
def c1_single():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=1, duration_s=10.0)


@pytest.fixture(scope="module")
def c1_four():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=4, duration_s=10.0)


def test_deploy_places_services_correctly():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    orchestrator = Orchestrator(testbed)
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C12"])
    pipeline.deploy()
    assert pipeline.instances("primary")[0].address.node == "e1"
    assert pipeline.instances("sift")[0].address.node == "e1"
    for service in ("encoding", "lsh", "matching"):
        assert pipeline.instances(service)[0].address.node == "e2"


def test_deploy_is_idempotent():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    orchestrator = Orchestrator(testbed)
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"])
    pipeline.deploy()
    pipeline.deploy()
    assert len(pipeline.instances("sift")) == 1


def test_deploy_reserves_memory():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    orchestrator = Orchestrator(testbed)
    ScatterPipeline(testbed, orchestrator,
                    baseline_configs()["C1"]).deploy()
    # All five base footprints land on E1: 0.4+1.5+1.2+0.8+1.0 GB.
    assert testbed.machine("e1").memory.in_use_bytes == \
        pytest.approx(4.9 * GB)


def test_single_client_realtime_qos(c1_single):
    """§4: single client ≥25 FPS at ≈40 ms E2E."""
    assert c1_single.mean_fps() >= 25.0
    assert c1_single.success_rate() >= 0.80
    assert 30.0 <= c1_single.mean_e2e_ms() <= 55.0


def test_single_client_service_latencies(c1_single):
    latencies = c1_single.service_latency_ms()
    # sift is the heaviest stage; every service is in Fig. 2's range.
    assert latencies["sift"] >= latencies["encoding"]
    for service, value in latencies.items():
        assert 1.0 <= value <= 45.0, (service, value)


def test_concurrency_degrades_fps(c1_single, c1_four):
    """§4: scAtteR degrades significantly with concurrent clients."""
    assert c1_four.mean_fps() < 0.5 * c1_single.mean_fps()


def test_four_clients_below_five_fps(c1_four):
    """§5: scAtteR struggles to maintain > 5 FPS with four clients."""
    assert c1_four.mean_fps() <= 8.0


def test_sift_sees_double_load(c1_single):
    """§4: sift observes ≈2x the request load of its peers."""
    sift = c1_single.pipeline.instances("sift")[0]
    encoding = c1_single.pipeline.instances("encoding")[0]
    ratio = sift.stats.received / max(1, encoding.stats.received)
    assert 1.6 <= ratio <= 2.2


def test_sift_memory_grows_with_clients(c1_single, c1_four):
    """§4: sift stores state while matching lags; memory grows."""
    single = c1_single.service_memory_gb()["sift"]
    four = c1_four.service_memory_gb()["sift"]
    assert four > single + 0.1


def test_drops_concentrate_at_sift_and_matching(c1_four):
    drops = c1_four.drop_counts()
    assert drops["sift"] > drops["encoding"]
    assert drops["sift"] > drops["lsh"]
    assert drops["matching"] > 0


def test_fetch_timeouts_rise_with_load(c1_single, c1_four):
    def timeouts(result):
        return sum(i.fetch_timeouts
                   for i in result.pipeline.instances("matching"))

    assert timeouts(c1_four) > timeouts(c1_single)


def test_utilization_not_proportional_to_load(c1_single, c1_four):
    """Insight I: hardware utilization does not track QoS.  FPS drops
    ~7x from 1 to 4 clients while GPU utilization moves only a few
    points."""
    gpu_single = c1_single.machine_gpu_util()["e1"]
    gpu_four = c1_four.machine_gpu_util()["e1"]
    fps_ratio = c1_single.mean_fps() / max(0.1, c1_four.mean_fps())
    util_ratio = gpu_four / max(1e-6, gpu_single)
    assert fps_ratio > 3.0
    assert 0.7 <= util_ratio <= 1.5


def test_state_stickiness_with_sift_replicas():
    """§4: fetches target the replica holding the frame's state."""
    result = run_scatter_experiment(scaling_config([1, 2, 1, 1, 2]),
                                    num_clients=2, duration_s=10.0)
    sifts = result.pipeline.instances("sift")
    assert len(sifts) == 2
    # Both replicas served fetches; none was bypassed.
    for sift in sifts:
        assert sift.fetch_hits > 0


def test_results_only_go_to_owning_client():
    result = run_scatter_experiment(baseline_configs()["C2"],
                                    num_clients=2, duration_s=10.0)
    for stats in result.clients:
        # Every received frame number was one this client sent.
        assert set(stats.received) <= set(stats.sent)


def test_e2e_latency_of_split_higher_than_local():
    local = run_scatter_experiment(uniform_config("C1", "e1"),
                                   num_clients=1, duration_s=10.0)
    split = run_scatter_experiment(baseline_configs()["C12"],
                                   num_clients=1, duration_s=10.0)
    assert split.mean_e2e_ms() > local.mean_e2e_ms()


def test_deterministic_given_seed():
    first = run_scatter_experiment(baseline_configs()["C1"],
                                   num_clients=2, duration_s=5.0, seed=7)
    second = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=2, duration_s=5.0, seed=7)
    assert first.mean_fps() == second.mean_fps()
    assert first.mean_e2e_ms() == second.mean_e2e_ms()


def test_different_seeds_differ():
    first = run_scatter_experiment(baseline_configs()["C1"],
                                   num_clients=2, duration_s=5.0, seed=1)
    second = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=2, duration_s=5.0, seed=2)
    assert first.mean_e2e_ms() != second.mean_e2e_ms()
