"""Reference-vs-vectorized bit-identity harness.

The vectorized kernels in :mod:`repro.vision` claim to be *exactly*
equal to their per-keypoint/per-row loop formulations — not merely
``allclose``.  This file is the enforcement: every kernel runs side by
side with its :mod:`repro.vision.reference` twin across randomized
seeded sweeps (image sizes, keypoint populations, GMM sizes, LSH
configurations) and every comparison is ``==`` on raw bytes.

The second half certifies the content-addressed
:class:`~repro.vision.cache.FeatureCache` as *behaviour-invisible*:
cached results are bit-identical to recomputes, and the committed
golden trace digests (``tests/golden/determinism_digests.json``) are
byte-identical with the cache enabled or disabled, serial or sharded.
"""

import numpy as np
import pytest

from repro.scatter.content import ContentCostModel, FrameFeatureExtractor
from repro.vision.cache import (
    DISABLE_ENV,
    FeatureCache,
    default_feature_cache,
    reset_default_feature_cache,
)
from repro.vision.fisher import FisherEncoder, GaussianMixture
from repro.vision.image import to_grayscale
from repro.vision.lsh import LshIndex
from repro.vision.matching import match_descriptors
from repro.vision.pca import Pca
from repro.vision.reference import (
    ReferenceSiftExtractor,
    reference_fisher_encode,
    reference_lsh_query,
    reference_lsh_signatures,
    reference_match_descriptors,
)
from repro.vision.sift import SiftExtractor
from repro.vision.video import SyntheticVideo


def _frame(seed: int, size, number: int) -> np.ndarray:
    video = SyntheticVideo(seed=seed, size=size)
    return to_grayscale(video.frame(number).image)


def _assert_keypoints_equal(reference, vectorized):
    assert len(reference) == len(vectorized)
    for ref_kp, vec_kp in zip(reference, vectorized):
        assert ref_kp == vec_kp  # frozen dataclass: exact floats


def _assert_bit_equal(reference: np.ndarray, vectorized: np.ndarray):
    assert reference.shape == vectorized.shape
    assert reference.dtype == vectorized.dtype
    assert reference.tobytes() == vectorized.tobytes()


# ----------------------------------------------------------------------
# SIFT: detection, orientation, description
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,size,number", [
    (0, (144, 192), 3),
    (1, (144, 192), 17),
    (2, (96, 128), 0),
    (3, (112, 160), 25),
])
def test_sift_detect_and_describe_bit_identical(seed, size, number):
    image = _frame(seed, size, number)
    extractor = SiftExtractor()
    ref_kps, ref_desc = \
        ReferenceSiftExtractor(extractor).detect_and_describe(image)
    vec_kps, vec_desc = extractor.detect_and_describe(image)
    assert len(vec_kps) > 0  # non-vacuous: the frame has structure
    _assert_keypoints_equal(ref_kps, vec_kps)
    _assert_bit_equal(ref_desc, vec_desc)


def test_sift_randomized_config_sweep():
    """Seeds x sizes x extractor configs, all bit-identical."""
    total_keypoints = 0
    for seed in range(4):
        for size in ((96, 128), (128, 176)):
            image = _frame(seed, size, number=seed * 7)
            for intervals, contrast in ((2, 0.02), (3, 0.04)):
                extractor = SiftExtractor(
                    intervals=intervals,
                    contrast_threshold=contrast,
                    max_keypoints=200)
                ref_kps, ref_desc = ReferenceSiftExtractor(
                    extractor).detect_and_describe(image)
                vec_kps, vec_desc = \
                    extractor.detect_and_describe(image)
                _assert_keypoints_equal(ref_kps, vec_kps)
                _assert_bit_equal(ref_desc, vec_desc)
                total_keypoints += len(vec_kps)
    assert total_keypoints > 100  # the sweep exercised real work


# ----------------------------------------------------------------------
# Descriptor matching
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_matching_bit_identical(seed):
    rng = np.random.default_rng(seed)
    reference = rng.standard_normal((40, 32))
    query = np.vstack([
        reference[rng.integers(0, 40, size=25)]
        + 0.05 * rng.standard_normal((25, 32)),
        rng.standard_normal((10, 32)),  # genuinely novel queries
    ])
    for kwargs in ({}, {"ratio": 0.7}, {"max_distance": 4.0},
                   {"ratio": 0.9, "max_distance": 2.5}):
        expected = reference_match_descriptors(query, reference,
                                               **kwargs)
        actual = match_descriptors(query, reference, **kwargs)
        assert len(expected) > 0  # non-vacuous
        assert actual == expected  # frozen dataclasses: exact floats


def test_matching_edge_cases_bit_identical():
    rng = np.random.default_rng(0)
    reference = rng.standard_normal((1, 16))  # no ratio test possible
    query = rng.standard_normal((5, 16))
    assert match_descriptors(query, reference) == \
        reference_match_descriptors(query, reference)
    assert match_descriptors(np.empty((0, 16)), reference) == []
    # 1-d inputs promote to a single row in both paths.
    assert match_descriptors(query[0], reference[0]) == \
        reference_match_descriptors(query[0], reference[0])


# ----------------------------------------------------------------------
# LSH: signatures, bucket probing, scoring
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_tables,n_bits,dimension,n_keys,seed", [
    (4, 12, 64, 30, 0),
    (2, 8, 16, 10, 1),
    (6, 16, 128, 50, 2),
    (1, 4, 8, 5, 3),
])
def test_lsh_signatures_and_query_bit_identical(
        n_tables, n_bits, dimension, n_keys, seed):
    rng = np.random.default_rng(seed)
    index = LshIndex(dimension, n_tables=n_tables, n_bits=n_bits,
                     seed=seed)
    vectors = rng.standard_normal((n_keys, dimension))
    index.insert_many((f"key{i}", vectors[i]) for i in range(n_keys))

    for i in range(n_keys):
        expected = reference_lsh_signatures(index, vectors[i])
        actual = index.signature_batch(vectors[i][None, :])[0]
        assert actual.dtype == expected.dtype
        assert actual.tobytes() == expected.tobytes()

    queries = np.vstack([
        vectors[:5] + 0.01 * rng.standard_normal((5, dimension)),
        rng.standard_normal((3, dimension)),
    ])
    for query in queries:
        for k in (1, 3):
            expected = reference_lsh_query(index, query, k=k)
            actual = index.query(query, k=k)
            assert actual == expected  # keys, order, exact similarity


def test_lsh_insert_many_equivalent_to_insert_loop():
    rng = np.random.default_rng(7)
    vectors = rng.standard_normal((20, 32))
    one_by_one = LshIndex(32, seed=7)
    batched = LshIndex(32, seed=7)
    for i in range(20):
        one_by_one.insert(i, vectors[i])
    batched.insert_many((i, vectors[i]) for i in range(20))
    assert one_by_one._tables == batched._tables
    query = vectors[3] + 0.01 * rng.standard_normal(32)
    assert one_by_one.query(query, k=5) == batched.query(query, k=5)


# ----------------------------------------------------------------------
# Fisher encoding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_components,n_descriptors,seed", [
    (2, 1, 0), (2, 7, 1), (3, 40, 2), (5, 12, 3), (4, 200, 4),
])
def test_fisher_encode_bit_identical(n_components, n_descriptors,
                                     seed):
    rng = np.random.default_rng(seed)
    train = rng.standard_normal((80, 16))
    gmm = GaussianMixture(n_components, seed=seed).fit(train)
    encoder = FisherEncoder(gmm)
    descriptors = rng.standard_normal((n_descriptors, 16))
    expected = reference_fisher_encode(encoder, descriptors)
    actual = encoder.encode(descriptors)
    assert np.abs(actual).max() > 0  # non-vacuous
    _assert_bit_equal(expected, actual)


def test_fisher_encode_batch_matches_single_calls():
    rng = np.random.default_rng(9)
    gmm = GaussianMixture(3, seed=9).fit(rng.standard_normal((60, 8)))
    encoder = FisherEncoder(gmm)
    sets = [rng.standard_normal((n, 8)) for n in (1, 5, 12)]
    sets.insert(1, np.empty((0, 8)))  # empty set mid-batch
    batch = encoder.encode_batch(sets)
    assert len(batch) == len(sets)
    for descriptors, encoded in zip(sets, batch):
        _assert_bit_equal(encoder.encode(descriptors), encoded)
    _assert_bit_equal(batch[1], np.zeros(encoder.dimension))


# ----------------------------------------------------------------------
# End-to-end: frame -> features -> encoding -> index, both paths
# ----------------------------------------------------------------------
def test_pipeline_end_to_end_bit_identical():
    image = _frame(seed=0, size=(144, 192), number=3)
    extractor = SiftExtractor()
    ref_kps, ref_desc = \
        ReferenceSiftExtractor(extractor).detect_and_describe(image)
    vec_kps, vec_desc = extractor.detect_and_describe(image)
    _assert_keypoints_equal(ref_kps, vec_kps)
    _assert_bit_equal(ref_desc, vec_desc)

    rng = np.random.default_rng(0)
    pca = Pca(8).fit(np.vstack([ref_desc,
                                rng.standard_normal((64, 128))]))
    projected_ref = pca.transform(ref_desc)
    projected_vec = pca.transform(vec_desc)
    _assert_bit_equal(projected_ref, projected_vec)

    gmm = GaussianMixture(2, seed=0).fit(projected_ref)
    encoder = FisherEncoder(gmm)
    fisher_ref = reference_fisher_encode(encoder, projected_ref)
    fisher_vec = encoder.encode(projected_vec)
    _assert_bit_equal(fisher_ref, fisher_vec)

    index = LshIndex(encoder.dimension, seed=0)
    index.insert("frame", fisher_vec)
    assert index.query(fisher_ref, k=1) == \
        reference_lsh_query(index, fisher_ref, k=1)


# ----------------------------------------------------------------------
# Feature cache: hits are bit-identical to recomputes
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_stack():
    """A small PCA + GMM trained on real descriptors (shared)."""
    extractor = SiftExtractor(max_keypoints=120)
    video = SyntheticVideo(seed=0, size=(96, 128))
    descriptors = np.vstack([
        extractor.detect_and_describe(
            to_grayscale(video.frame(n).image))[1]
        for n in (0, 9)])
    pca = Pca(8).fit(descriptors)
    gmm = GaussianMixture(2, seed=0).fit(pca.transform(descriptors))
    return video, extractor, pca, FisherEncoder(gmm)


def test_cached_backend_bit_identical_to_uncached(trained_stack):
    video, extractor, pca, encoder = trained_stack
    cached = FrameFeatureExtractor(
        video, extractor, pca=pca, encoder=encoder,
        cache=FeatureCache())
    uncached = FrameFeatureExtractor(
        video, extractor, pca=pca, encoder=encoder,
        cache=FeatureCache(enabled=False))

    for frame_number in (2, 11, 2, 11, 2):  # repeats hit the cache
        ckps, cdesc = cached.features(frame_number)
        ukps, udesc = uncached.features(frame_number)
        _assert_keypoints_equal(list(ukps), list(ckps))
        _assert_bit_equal(udesc, cdesc)
        _assert_bit_equal(uncached.encoding(frame_number),
                          cached.encoding(frame_number))

    stats = cached.stats()
    assert stats.hits > 0 and stats.misses > 0
    assert uncached.stats().hits == 0


def test_content_cost_model_cache_transparent():
    video = SyntheticVideo(seed=0, size=(96, 128))
    with_cache = ContentCostModel.from_video(
        video, cache=FeatureCache())
    without = ContentCostModel.from_video(
        video, cache=FeatureCache(enabled=False))
    warm_cache = FeatureCache()
    ContentCostModel.from_video(video, cache=warm_cache)
    warm = ContentCostModel.from_video(video, cache=warm_cache)

    baseline = without._multipliers
    for model in (with_cache, warm):
        _assert_bit_equal(baseline, model._multipliers)
    assert warm_cache.stats().hits > 0


# ----------------------------------------------------------------------
# The determinism contract survives the cache
# ----------------------------------------------------------------------
def test_experiment_digest_identical_with_active_cache(trained_stack):
    """A run doing *real* cached vision work keeps its trace digest.

    The backend's kernels execute in real wall time while the
    simulated services consume calibrated virtual time, so enabling
    the cache must not move a single simulated event.
    """
    from repro.experiments.runner import run_scatter_experiment
    from repro.scatter.config import PIPELINE_ORDER, baseline_configs

    video, extractor, pca, encoder = trained_stack
    placement = baseline_configs()["C1"]
    model = ContentCostModel.from_video(video,
                                        cache=FeatureCache())

    def run(cache):
        backend = FrameFeatureExtractor(
            video, extractor, pca=pca, encoder=encoder, cache=cache)
        service_kwargs = {name: {"cost_model": model}
                          for name in PIPELINE_ORDER}
        service_kwargs["sift"]["vision_backend"] = backend
        service_kwargs["encoding"]["vision_backend"] = backend
        result = run_scatter_experiment(
            placement, num_clients=2, duration_s=1.0, seed=0,
            pipeline_kwargs={"service_kwargs": service_kwargs})
        assert backend.frames_extracted > 0
        return result, cache.stats()

    enabled_result, enabled_stats = run(FeatureCache())
    disabled_result, disabled_stats = run(
        FeatureCache(enabled=False))
    assert enabled_stats.hits > 0  # the cache actually engaged
    assert disabled_stats.hits == 0
    assert enabled_result.trace_digest == disabled_result.trace_digest
    assert enabled_result.mean_fps() == disabled_result.mean_fps()


@pytest.fixture
def feature_cache_disabled(monkeypatch):
    """Disable the process-default cache for one test, then restore."""
    monkeypatch.setenv(DISABLE_ENV, "1")
    reset_default_feature_cache()
    assert not default_feature_cache().enabled
    yield
    # monkeypatch restores the environment after this; dropping the
    # singleton makes the next consumer re-read it.
    reset_default_feature_cache()


@pytest.mark.parametrize("workers", [0, 4])
def test_golden_digests_unchanged_with_cache_disabled(
        feature_cache_disabled, workers):
    """The committed golden digests hold with caching off, any shard.

    ``tests/test_determinism.py`` pins the digests with the default
    (enabled) cache; this is the other half of the regression — the
    cache being *absent* is equally invisible.  Worker processes
    inherit the disabling environment variable.
    """
    import json

    from repro.experiments.campaign import run_campaign
    from tests.test_determinism import (
        CONTRACT_CAMPAIGN,
        GOLDEN_PATH,
        _digest_map,
    )

    report = run_campaign(CONTRACT_CAMPAIGN, workers=workers)
    assert not report.failures
    golden = json.loads(GOLDEN_PATH.read_text())
    assert _digest_map(report) == golden["digests"]
