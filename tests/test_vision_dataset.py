"""Unit tests for the synthetic dataset and replay video."""

import numpy as np
import pytest

from repro.vision.dataset import WorkplaceDataset
from repro.vision.sift import SiftExtractor
from repro.vision.video import (
    FRAME_WIRE_BYTES,
    FRAME_WIRE_BYTES_STATEFUL,
    SyntheticVideo,
)


def test_dataset_has_three_objects():
    dataset = WorkplaceDataset(seed=0)
    assert dataset.names() == ["keyboard", "monitor", "table"]
    for name in dataset.names():
        image = dataset.objects[name].image
        assert image.ndim == 2
        assert 0.0 <= image.min() and image.max() <= 1.0


def test_dataset_deterministic_by_seed():
    a = WorkplaceDataset(seed=7)
    b = WorkplaceDataset(seed=7)
    c = WorkplaceDataset(seed=8)
    assert np.array_equal(a.objects["monitor"].image,
                          b.objects["monitor"].image)
    assert not np.array_equal(a.objects["monitor"].image,
                              c.objects["monitor"].image)


def test_objects_are_feature_rich():
    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.02)
    dataset.extract_all_features(extractor)
    for name in dataset.names():
        reference = dataset.objects[name]
        assert len(reference.keypoints) >= 5, (
            f"{name} produced too few keypoints to be recognizable")
        assert reference.descriptors.shape == (len(reference.keypoints), 128)
        assert reference.keypoint_coordinates.shape[1] == 2


def test_render_scene_contains_objects():
    dataset = WorkplaceDataset(seed=0)
    frame, ground_truth = dataset.render_scene(size=(120, 160))
    assert frame.shape == (120, 160)
    assert {placement.name for placement in ground_truth} == \
        {"monitor", "keyboard", "table"}
    # Objects introduce contrast beyond background noise.
    assert frame.std() > 0.05


def test_render_scene_camera_offset_moves_objects():
    dataset = WorkplaceDataset(seed=0)
    __, still = dataset.render_scene(size=(120, 160))
    __, shifted = dataset.render_scene(size=(120, 160),
                                       camera_offset=(10.0, 5.0))
    for a, b in zip(still, shifted):
        assert np.allclose(b.corners - a.corners, [10.0, 5.0])


def test_render_scene_custom_placement():
    dataset = WorkplaceDataset(seed=0)
    placement = np.array([[1.0, 0.0, 30.0], [0.0, 1.0, 40.0]])
    __, ground_truth = dataset.render_scene(
        placements={"monitor": placement})
    monitor = next(p for p in ground_truth if p.name == "monitor")
    assert np.allclose(monitor.corners[0], [30.0, 40.0])


def test_render_scene_rejects_bad_placement():
    dataset = WorkplaceDataset(seed=0)
    with pytest.raises(ValueError):
        dataset.render_scene(placements={"monitor": np.eye(3)})


def test_render_scene_object_offscreen_is_ok():
    dataset = WorkplaceDataset(seed=0)
    placement = np.array([[1.0, 0.0, 500.0], [0.0, 1.0, 500.0]])
    frame, __ = dataset.render_scene(size=(60, 80),
                                     placements={"monitor": placement})
    assert frame.shape == (60, 80)


def test_unknown_object_kind_rejected():
    with pytest.raises(ValueError):
        WorkplaceDataset(sizes={"plant": (10, 10)})


def test_video_frame_count_and_interval():
    video = SyntheticVideo(duration_s=10.0, fps=30.0)
    assert video.num_frames == 300
    assert video.frame_interval_s == pytest.approx(1 / 30)


def test_video_frames_deterministic_and_cached():
    video = SyntheticVideo(size=(60, 80), seed=3)
    first = video.frame(5)
    second = video.frame(5)
    assert first is second  # cache hit
    other = SyntheticVideo(size=(60, 80), seed=3).frame(5)
    assert np.array_equal(first.image, other.image)


def test_video_wraps_around():
    video = SyntheticVideo(size=(60, 80))
    assert video.frame(video.num_frames) is video.frame(0)


def test_video_camera_motion_changes_frames():
    video = SyntheticVideo(size=(60, 80), seed=0)
    a = video.frame(0)
    b = video.frame(75)  # quarter period: maximal pan
    assert not np.array_equal(a.image, b.image)
    assert a.timestamp_s == 0.0
    assert b.timestamp_s == pytest.approx(2.5)


def test_video_ground_truth_present():
    video = SyntheticVideo(size=(60, 80))
    frame = video.frame(0)
    assert len(frame.ground_truth) == 3


def test_video_validation():
    with pytest.raises(ValueError):
        SyntheticVideo(duration_s=0)
    with pytest.raises(ValueError):
        SyntheticVideo(fps=0)


def test_paper_wire_sizes():
    assert FRAME_WIRE_BYTES == 180 * 1024
    assert FRAME_WIRE_BYTES_STATEFUL == 480 * 1024
