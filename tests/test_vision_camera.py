"""Tests for camera intrinsics and homography decomposition."""

import numpy as np
import pytest

from repro.vision.camera import (
    CameraIntrinsics,
    decompose_homography,
    homography_from_pose,
    rotation_about,
)


@pytest.fixture
def intrinsics():
    return CameraIntrinsics.for_image((144, 192), fov_degrees=60.0)


def test_intrinsics_matrix_shape(intrinsics):
    k = intrinsics.matrix
    assert k.shape == (3, 3)
    assert k[0, 2] == 96.0
    assert k[1, 2] == 72.0
    assert k[0, 0] == pytest.approx(192 / 2 / np.tan(np.radians(30)))


def test_intrinsics_validation():
    with pytest.raises(ValueError):
        CameraIntrinsics(fx=0, fy=1, cx=0, cy=0)
    with pytest.raises(ValueError):
        CameraIntrinsics.for_image((10, 10), fov_degrees=0.0)


def pose_roundtrip(intrinsics, rotation, translation):
    homography = homography_from_pose(rotation, translation,
                                      intrinsics)
    return decompose_homography(homography, intrinsics)


def test_identity_pose_roundtrip(intrinsics):
    translation = np.array([0.0, 0.0, 5.0])
    pose = pose_roundtrip(intrinsics, np.eye(3), translation)
    assert np.allclose(pose.rotation, np.eye(3), atol=1e-9)
    assert np.allclose(pose.translation, translation, atol=1e-9)
    assert pose.distance == pytest.approx(5.0)


@pytest.mark.parametrize("axis,angle", [
    ("x", 15.0), ("y", -20.0), ("z", 30.0), ("y", 5.0),
])
def test_rotated_pose_roundtrip(intrinsics, axis, angle):
    rotation = rotation_about(axis, angle)
    translation = np.array([1.0, -2.0, 8.0])
    pose = pose_roundtrip(intrinsics, rotation, translation)
    assert np.allclose(pose.rotation, rotation, atol=1e-8)
    assert np.allclose(pose.translation, translation, atol=1e-8)


def test_combined_rotation_roundtrip(intrinsics):
    rotation = (rotation_about("z", 25.0) @ rotation_about("x", 10.0)
                @ rotation_about("y", -15.0))
    translation = np.array([0.5, 0.3, 4.0])
    pose = pose_roundtrip(intrinsics, rotation, translation)
    assert np.allclose(pose.rotation, rotation, atol=1e-8)


def test_scaled_homography_same_pose(intrinsics):
    """Homographies are projective: scale must not change the pose."""
    rotation = rotation_about("y", 12.0)
    translation = np.array([0.0, 1.0, 6.0])
    homography = homography_from_pose(rotation, translation,
                                      intrinsics)
    pose_a = decompose_homography(homography, intrinsics)
    pose_b = decompose_homography(3.7 * homography, intrinsics)
    assert np.allclose(pose_a.rotation, pose_b.rotation, atol=1e-8)
    assert np.allclose(pose_a.translation, pose_b.translation,
                       atol=1e-8)


def test_sign_ambiguity_resolved_to_front(intrinsics):
    rotation = np.eye(3)
    translation = np.array([0.0, 0.0, 3.0])
    homography = homography_from_pose(rotation, translation,
                                      intrinsics)
    pose = decompose_homography(-homography, intrinsics)
    assert pose.translation[2] > 0


def test_euler_angles(intrinsics):
    pose = pose_roundtrip(intrinsics, rotation_about("z", 40.0),
                          np.array([0.0, 0.0, 2.0]))
    yaw, pitch, roll = pose.yaw_pitch_roll_degrees
    assert yaw == pytest.approx(40.0, abs=1e-6)
    assert pitch == pytest.approx(0.0, abs=1e-6)
    assert roll == pytest.approx(0.0, abs=1e-6)


def test_decompose_validation(intrinsics):
    with pytest.raises(ValueError):
        decompose_homography(np.eye(4), intrinsics)
    with pytest.raises(ValueError):
        decompose_homography(np.zeros((3, 3)), intrinsics)
    with pytest.raises(ValueError):
        homography_from_pose(np.eye(3), np.zeros(2), intrinsics)
    with pytest.raises(ValueError):
        rotation_about("w", 10.0)


def test_estimated_homography_decomposes_sanely(intrinsics):
    """End to end: RANSAC homography from noisy correspondences still
    decomposes to approximately the true pose."""
    from repro.vision.pose import estimate_homography_ransac

    rng = np.random.default_rng(0)
    rotation = rotation_about("y", 10.0) @ rotation_about("x", 5.0)
    translation = np.array([0.2, -0.1, 6.0])
    true_h = homography_from_pose(rotation, translation, intrinsics)

    src = rng.uniform(-2.0, 2.0, (40, 2))
    homogeneous = np.hstack([src, np.ones((40, 1))])
    projected = homogeneous @ true_h.T
    dst = projected[:, :2] / projected[:, 2:3]
    dst += rng.normal(0.0, 0.2, dst.shape)  # pixel noise

    result = estimate_homography_ransac(src, dst, threshold=1.0,
                                        seed=0)
    assert result is not None
    pose = decompose_homography(result.matrix, intrinsics)
    # Rotation recovered within a few degrees.
    error = np.degrees(np.arccos(np.clip(
        (np.trace(pose.rotation.T @ rotation) - 1) / 2, -1, 1)))
    assert error < 5.0
