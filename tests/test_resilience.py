"""Unit tests for the client resilience layer and its metrics.

Covers the pieces in isolation — retry backoff, breaker transitions,
the local fast-feature fallback on real (synthetic) images, the
bounded sample reservoir, sidecar detach cleanup and the degraded
accounting in :class:`~repro.metrics.qos.ClientStats` — so the chaos
integration tests can focus on end-to-end behaviour.
"""

import numpy as np
import pytest

from repro.cluster import Container, Machine
from repro.cluster.gpu import RTX_2080
from repro.cluster.machine import GB
from repro.dsp import FrameRecord, StreamService
from repro.metrics.qos import ClientStats
from repro.metrics.summary import SampleReservoir
from repro.net import Address, Network, ServiceRegistry
from repro.scatter.resilience import (
    BreakerState,
    CircuitBreaker,
    LocalFallbackTracker,
    ResilienceConfig,
    RetryPolicy,
)
from repro.scatterpp.sidecar import Sidecar
from repro.sim import Simulator
from repro.vision.recognizer import Recognition
from repro.vision.video import SyntheticVideo


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_exponential_growth():
    policy = RetryPolicy(base_delay_s=0.05, multiplier=2.0,
                        max_delay_s=1.0, jitter=0.0)
    assert policy.delay_s(1) == pytest.approx(0.05)
    assert policy.delay_s(2) == pytest.approx(0.10)
    assert policy.delay_s(3) == pytest.approx(0.20)
    # Cap: far attempts saturate at max_delay_s.
    assert policy.delay_s(10) == pytest.approx(1.0)


def test_retry_policy_jitter_bounded_and_deterministic():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, jitter=0.5)
    delays = [policy.delay_s(1, np.random.default_rng(42))
              for __ in range(50)]
    # Same generator seed -> same draw.
    assert len(set(delays)) == 1
    rng = np.random.default_rng(0)
    spread = [policy.delay_s(1, rng) for __ in range(200)]
    assert all(0.05 <= d <= 0.15 for d in spread)
    assert max(spread) > min(spread)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().delay_s(0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def make_breaker(**kwargs):
    sim = Simulator()
    defaults = dict(failure_threshold=3, recovery_timeout_s=1.0)
    defaults.update(kwargs)
    return sim, CircuitBreaker(sim, **defaults)


def test_breaker_closed_to_open_to_half_open_to_closed():
    sim, breaker = make_breaker()
    assert breaker.state is BreakerState.CLOSED
    for __ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert not breaker.allow()

    # After the recovery timeout one probe is let through...
    sim.run(until=1.5)
    assert breaker.allow()
    assert breaker.state is BreakerState.HALF_OPEN
    # ...but only one (half_open_probes=1).
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_breaker_reopens_on_failed_probe():
    sim, breaker = make_breaker()
    for __ in range(3):
        breaker.record_failure()
    sim.run(until=1.2)
    assert breaker.allow()  # half-open probe
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    # The recovery clock restarted at the failed probe.
    assert breaker.opened_at_s == pytest.approx(1.2)
    assert not breaker.allow()


def test_breaker_success_resets_consecutive_count():
    __, breaker = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_breaker_timeline_and_open_time():
    sim, breaker = make_breaker()
    for __ in range(3):
        breaker.record_failure()
    sim.run(until=2.0)
    breaker.allow()           # -> HALF_OPEN at t=2.0
    breaker.record_success()  # -> CLOSED at t=2.0
    states = [state for __, state in breaker.timeline]
    assert states == [BreakerState.CLOSED, BreakerState.OPEN,
                      BreakerState.HALF_OPEN, BreakerState.CLOSED]
    assert breaker.open_time_s() == pytest.approx(2.0)


# ----------------------------------------------------------------------
# LocalFallbackTracker (real vision on synthetic frames)
# ----------------------------------------------------------------------
def test_fallback_tracker_estimates_camera_shift():
    video = SyntheticVideo(duration_s=1.0, fps=30.0, seed=3)
    tracker = LocalFallbackTracker(seed=0)
    # Prime with frame 0, then measure the shift to a later frame.
    tracker.estimate_shift(video.frame(0).image)
    dx, dy = tracker.estimate_shift(video.frame(6).image)
    # The synthetic camera pans: a non-trivial, bounded shift.
    assert (abs(dx) + abs(dy)) > 0.0
    assert abs(dx) < 20.0 and abs(dy) < 20.0


def test_fallback_tracker_advects_seeded_recognitions():
    video = SyntheticVideo(duration_s=1.0, fps=30.0, seed=3)
    tracker = LocalFallbackTracker(seed=0)
    corners = np.array([[40.0, 40.0], [80.0, 40.0],
                        [80.0, 80.0], [40.0, 80.0]])
    tracker.seed([Recognition(name="monitor", corners=corners,
                              num_inliers=20, similarity=0.9,
                              mean_error=1.0)])
    assert tracker.engaged
    tracks = None
    for index in range(5):
        tracks = tracker.track(index, video.frame(index).image)
    assert tracker.frames_tracked == 5
    assert tracks and tracks[0].name == "monitor"
    # The advected object stayed in-frame and near its seed.
    drift = np.linalg.norm(tracks[0].centre - corners.mean(axis=0))
    assert drift < 30.0


def test_fallback_tracker_ignores_rewinds():
    video = SyntheticVideo(duration_s=1.0, fps=30.0, seed=3)
    tracker = LocalFallbackTracker(seed=0)
    tracker.track(5, video.frame(5).image)
    # A late-retried older frame must not rewind the tracker.
    tracker.track(3, video.frame(3).image)
    assert tracker.frames_tracked == 2
    tracker.track(6, video.frame(6).image)  # still advances fine


# ----------------------------------------------------------------------
# SampleReservoir
# ----------------------------------------------------------------------
def test_reservoir_exact_below_cap():
    reservoir = SampleReservoir(maxlen=100)
    reservoir.extend(range(50))
    assert list(reservoir) == list(range(50))
    assert reservoir.total == 50
    assert not reservoir.overflowed


def test_reservoir_bounded_above_cap():
    reservoir = SampleReservoir(maxlen=64)
    reservoir.extend(float(i) for i in range(10_000))
    assert len(reservoir) == 64
    assert reservoir.total == 10_000
    assert reservoir.overflowed
    # Uniform sampling: the kept set spans the stream, not a prefix.
    assert max(reservoir) > 5_000


def test_reservoir_mean_still_computes():
    reservoir = SampleReservoir(maxlen=32)
    reservoir.extend([2.0] * 1000)
    assert float(np.mean(reservoir)) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Sidecar detach: no leaked state, drops accounted
# ----------------------------------------------------------------------
def make_sidecar_service():
    sim = Simulator()
    network = Network(sim, rng=np.random.default_rng(0))
    network.add_link("a", "b", rtt_s=0.002)
    machine = Machine(sim, "b", cpu_cores=8, memory_gb=64,
                      gpu_architecture=RTX_2080, gpu_count=1)
    registry = ServiceRegistry()
    container = Container(machine, "svc", base_memory_bytes=GB)

    class NullService(StreamService):
        def process(self, record):
            yield from self.compute()

    service = NullService(name="svc", network=network,
                          registry=registry, container=container,
                          address=Address("b", 5000),
                          base_time_s=0.010,
                          rng=np.random.default_rng(1))
    service.start()
    return sim, service


def make_frame(frame):
    return FrameRecord(client_id=0, frame_number=frame,
                       reply_to=Address("a", 9000), step="svc",
                       created_s=0.0, size_bytes=50_000)


def test_sidecar_detach_frees_pending_state():
    sim, service = make_sidecar_service()
    sidecar = Sidecar(service, threshold_s=10.0)
    sidecar.attach()
    base = service.container.memory_bytes()
    for frame in range(5):
        sidecar.enqueue(make_frame(frame))
    assert sidecar.depth == 5
    assert service.container.memory_bytes() == base + 5 * 50_000

    sidecar.detach()
    # Every pending entry's state is freed and counted as a drop.
    assert sidecar.depth == 0
    assert service.container.memory_bytes() == base
    assert sidecar.stats.dropped_detach == 5
    # Post-detach arrivals are refused, not leaked.
    sidecar.enqueue(make_frame(99))
    assert sidecar.stats.dropped_detach == 6
    assert service.container.memory_bytes() == base
    # The dispatcher exits instead of hanging on the drained queue.
    sim.run(until=1.0)


def test_sidecar_overflow_ratio():
    __, service = make_sidecar_service()
    sidecar = Sidecar(service, threshold_s=10.0, queue_capacity=3)
    for frame in range(5):
        sidecar.enqueue(make_frame(frame))
    assert sidecar.stats.enqueued == 3
    assert sidecar.stats.dropped_overflow == 2
    assert sidecar.stats.overflow_ratio() == pytest.approx(2 / 5)


# ----------------------------------------------------------------------
# ClientStats degraded accounting
# ----------------------------------------------------------------------
def test_degraded_frames_count_toward_availability_only():
    stats = ClientStats(client_id=0)
    for frame in range(4):
        stats.record_sent(frame, frame * 0.1)
    stats.record_received(0, 0.05)
    stats.record_degraded(1, 0.15)
    assert stats.frames_received == 1
    assert stats.frames_degraded == 1
    assert stats.success_rate() == pytest.approx(0.25)
    assert stats.degraded_rate() == pytest.approx(0.25)
    assert stats.availability() == pytest.approx(0.5)


def test_late_pipeline_result_supersedes_degraded():
    stats = ClientStats(client_id=0)
    stats.record_sent(0, 0.0)
    stats.record_degraded(0, 0.01)
    stats.record_received(0, 0.30)
    assert stats.frames_degraded == 0
    assert stats.frames_received == 1
    assert stats.availability() == pytest.approx(1.0)


def test_degraded_unknown_frame_rejected():
    stats = ClientStats(client_id=0)
    with pytest.raises(ValueError):
        stats.record_degraded(7, 1.0)


def test_resilience_config_validation_and_breaker_factory():
    with pytest.raises(ValueError):
        ResilienceConfig(request_timeout_s=0.0)
    sim = Simulator()
    config = ResilienceConfig(failure_threshold=7,
                              recovery_timeout_s=2.0)
    breaker = config.build_breaker(sim)
    assert breaker.failure_threshold == 7
    assert breaker.recovery_timeout_s == 2.0
    assert breaker.state is BreakerState.CLOSED
