"""Smoke tests for feature combinations.

Individually-tested features must also compose: tracing + ARQ
transport + content model + sidecars + autoscaler in one deployment,
without bookkeeping violations.
"""

import pytest

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import PIPELINE_ORDER, baseline_configs
from repro.scatter.content import ContentCostModel
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.vision.video import SyntheticVideo


@pytest.fixture(scope="module")
def cost_model():
    return ContentCostModel.from_video(SyntheticVideo(seed=0),
                                       sample_stride=50)


def test_scatter_all_features_together(cost_model):
    kwargs = {"service_kwargs": {
        name: {"cost_model": cost_model, "reliable_transport": True}
        for name in PIPELINE_ORDER}}
    result = run_scatter_experiment(
        baseline_configs()["C12"], num_clients=2, duration_s=8.0,
        pipeline_kwargs=kwargs, tracing=True)
    assert result.mean_fps() > 10.0
    assert result.tracer is not None
    assert result.tracer.completed_traces()
    # ARQ transport: inter-service legs never lose frames, so every
    # incomplete trace died at a service, not on the wire past primary.
    for trace in result.tracer.completed_traces()[:5]:
        services = [s.name for s in trace.ordered_spans()
                    if s.kind == "service"]
        assert services[0] == "primary"


def test_scatterpp_all_features_together(cost_model):
    kwargs = scatterpp_pipeline_kwargs(
        discipline="lifo-fresh",
        service_kwargs={name: {"cost_model": cost_model}
                        for name in PIPELINE_ORDER})
    result = run_scatter_experiment(
        baseline_configs()["C1"], num_clients=3, duration_s=8.0,
        pipeline_kwargs=kwargs, tracing=True)
    assert result.mean_fps() > 10.0
    # Sidecar queue books still balance with the LIFO discipline and
    # the content model in play.
    for service in PIPELINE_ORDER:
        for instance in result.pipeline.instances(service):
            stats = instance.sidecar.stats
            accounted = (stats.dispatched + stats.dropped_stale
                         + instance.sidecar.depth)
            assert 0 <= stats.enqueued - accounted <= 1


def test_scatterpp_tracing_flag_via_convenience_runner():
    result = run_scatterpp_experiment(
        baseline_configs()["C2"], num_clients=2, duration_s=6.0,
        threshold_s=0.050, tracing=True)
    assert result.analytics is not None
    assert result.tracer is not None
    breakdown = result.tracer.mean_breakdown_ms()
    assert "queue" in breakdown


def test_determinism_holds_with_features(cost_model):
    kwargs = {"service_kwargs": {
        name: {"cost_model": cost_model} for name in PIPELINE_ORDER}}

    def run():
        return run_scatter_experiment(
            baseline_configs()["C1"], num_clients=2, duration_s=5.0,
            seed=11, pipeline_kwargs=kwargs)

    first, second = run(), run()
    assert first.mean_fps() == second.mean_fps()
    assert first.mean_e2e_ms() == second.mean_e2e_ms()
