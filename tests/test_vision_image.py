"""Unit tests for image ops and the Gaussian scale space."""

import numpy as np
import pytest

from repro.vision.gaussian import (
    build_scale_space,
    downsample,
    gaussian_blur,
    gaussian_kernel_1d,
)
from repro.vision.image import (
    bilinear_resize,
    image_gradients,
    sample_bilinear,
    to_grayscale,
)


def test_grayscale_passthrough_for_2d():
    image = np.random.default_rng(0).random((8, 8))
    assert np.array_equal(to_grayscale(image), image)


def test_grayscale_weights_sum_to_one():
    white = np.ones((4, 4, 3))
    assert to_grayscale(white) == pytest.approx(np.ones((4, 4)))


def test_grayscale_channel_weighting():
    red = np.zeros((2, 2, 3))
    red[..., 0] = 1.0
    assert to_grayscale(red)[0, 0] == pytest.approx(0.299)


def test_grayscale_rejects_bad_shape():
    with pytest.raises(ValueError):
        to_grayscale(np.zeros((4, 4, 2)))


def test_resize_identity():
    image = np.random.default_rng(0).random((10, 12))
    assert np.array_equal(bilinear_resize(image, (10, 12)), image)


def test_resize_constant_image_stays_constant():
    image = np.full((16, 16), 0.7)
    resized = bilinear_resize(image, (5, 9))
    assert resized.shape == (5, 9)
    assert resized == pytest.approx(np.full((5, 9), 0.7))


def test_resize_downscale_averages():
    image = np.zeros((4, 4))
    image[:, 2:] = 1.0
    resized = bilinear_resize(image, (2, 2))
    # Left half dark, right half bright.
    assert resized[0, 0] < 0.5 < resized[0, 1]


def test_resize_validation():
    with pytest.raises(ValueError):
        bilinear_resize(np.zeros((4, 4, 3)), (2, 2))
    with pytest.raises(ValueError):
        bilinear_resize(np.zeros((4, 4)), (0, 2))


def test_gradients_of_ramp():
    xs = np.tile(np.arange(8, dtype=float), (8, 1))
    magnitude, orientation = image_gradients(xs)
    # Interior: horizontal gradient of 1, pointing along +x.
    assert magnitude[4, 4] == pytest.approx(1.0)
    assert orientation[4, 4] == pytest.approx(0.0)


def test_gradients_vertical_ramp():
    ys = np.tile(np.arange(8, dtype=float)[:, None], (1, 8))
    magnitude, orientation = image_gradients(ys)
    assert magnitude[4, 4] == pytest.approx(1.0)
    assert orientation[4, 4] == pytest.approx(np.pi / 2)


def test_sample_bilinear_exact_on_lattice():
    image = np.random.default_rng(1).random((6, 6))
    ys = np.array([0.0, 2.0, 5.0])
    xs = np.array([1.0, 3.0, 4.0])
    assert sample_bilinear(image, ys, xs) == pytest.approx(
        image[[0, 2, 5], [1, 3, 4]])


def test_sample_bilinear_interpolates_midpoint():
    image = np.array([[0.0, 1.0], [0.0, 1.0]])
    value = sample_bilinear(image, np.array([0.5]), np.array([0.5]))
    assert value[0] == pytest.approx(0.5)


def test_sample_bilinear_clamps_out_of_bounds():
    image = np.array([[1.0, 2.0], [3.0, 4.0]])
    value = sample_bilinear(image, np.array([-5.0]), np.array([10.0]))
    assert value[0] == pytest.approx(2.0)


def test_kernel_normalized_and_symmetric():
    kernel = gaussian_kernel_1d(1.5)
    assert kernel.sum() == pytest.approx(1.0)
    assert np.allclose(kernel, kernel[::-1])


def test_kernel_rejects_bad_sigma():
    with pytest.raises(ValueError):
        gaussian_kernel_1d(0.0)


def test_blur_preserves_mean_roughly():
    rng = np.random.default_rng(0)
    image = rng.random((32, 32))
    blurred = gaussian_blur(image, 2.0)
    assert blurred.mean() == pytest.approx(image.mean(), abs=0.01)
    # Blur reduces variance.
    assert blurred.var() < image.var()


def test_blur_constant_is_identity():
    image = np.full((16, 16), 0.3)
    assert gaussian_blur(image, 3.0) == pytest.approx(image)


def test_downsample_halves():
    image = np.arange(64, dtype=float).reshape(8, 8)
    small = downsample(image)
    assert small.shape == (4, 4)
    assert small[0, 0] == image[0, 0]
    assert small[1, 1] == image[2, 2]


def test_scale_space_shapes():
    image = np.random.default_rng(0).random((64, 64))
    space = build_scale_space(image, intervals=3)
    assert space.num_octaves >= 2
    for octave in space.gaussians:
        assert len(octave) == 6  # s + 3
    for octave in space.dogs:
        assert len(octave) == 5  # s + 2
    # Octave sizes halve.
    assert space.gaussians[1][0].shape == (32, 32)


def test_scale_space_dog_is_difference():
    image = np.random.default_rng(0).random((32, 32))
    space = build_scale_space(image, intervals=2)
    gaussians = space.gaussians[0]
    dogs = space.dogs[0]
    assert dogs[0] == pytest.approx(gaussians[1] - gaussians[0])


def test_scale_space_too_small_raises():
    with pytest.raises(ValueError):
        build_scale_space(np.zeros((4, 4)), min_size=16)


def test_scale_space_validation():
    with pytest.raises(ValueError):
        build_scale_space(np.zeros((64, 64)), intervals=0)
