"""Tests for the placement optimizer and the result store."""

import pytest

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.experiments.store import (
    ResultStore,
    diff_results,
    regressions,
    summarize_result,
)
from repro.experiments.reporting import bar_chart, sparkline
from repro.orchestra.placement import PlacementOptimizer
from repro.scatter.config import PIPELINE_ORDER, baseline_configs


# ----------------------------------------------------------------------
# Placement optimizer
# ----------------------------------------------------------------------
def test_search_covers_all_assignments():
    optimizer = PlacementOptimizer(machines=("e1", "e2"))
    estimates = optimizer.search()
    assert len(estimates) == 2 ** 5
    names = {e.placement.name for e in estimates}
    assert len(names) == 32


def test_best_throughput_beats_single_machine_estimates():
    optimizer = PlacementOptimizer(machines=("e1", "e2"))
    best = optimizer.best("throughput")
    singles = [optimizer.estimate({s: m for s in PIPELINE_ORDER})
               for m in ("e1", "e2")]
    for single in singles:
        assert best.throughput_fps >= single.throughput_fps
    # Splitting across machines gives more GPUs to spread over.
    assert len(set(best.placement.placements[s][0]
                   for s in PIPELINE_ORDER
                   if s != "primary")) == 2


def test_best_latency_avoids_hops():
    optimizer = PlacementOptimizer(machines=("e1", "e2"))
    best = optimizer.best("latency")
    gpu_machines = {best.placement.placements[s][0]
                    for s in PIPELINE_ORDER[1:]}
    assert len(gpu_machines) == 1  # one machine = no pipeline hops


def test_estimate_matches_simulation_ranking():
    """The analytic model's C12-vs-C1 ranking agrees with the
    simulator under load (scAtteR++, where throughput binds)."""
    optimizer = PlacementOptimizer(machines=("e1", "e2"))
    c1 = optimizer.estimate({s: "e1" for s in PIPELINE_ORDER})
    c12 = optimizer.estimate({
        "primary": "e1", "sift": "e1", "encoding": "e2",
        "lsh": "e2", "matching": "e2"})
    assert c12.throughput_fps > c1.throughput_fps

    sim_c1 = run_scatterpp_experiment(baseline_configs()["C1"],
                                      num_clients=4, duration_s=10.0)
    sim_c12 = run_scatterpp_experiment(baseline_configs()["C12"],
                                       num_clients=4, duration_s=10.0)
    assert sim_c12.mean_fps() > sim_c1.mean_fps()


def test_optimized_placement_performs_well_in_simulation():
    optimizer = PlacementOptimizer(machines=("e1", "e2"))
    best = optimizer.best("throughput")
    optimized = run_scatterpp_experiment(best.placement,
                                         num_clients=4,
                                         duration_s=10.0)
    reference = run_scatterpp_experiment(baseline_configs()["C1"],
                                         num_clients=4,
                                         duration_s=10.0)
    assert optimized.mean_fps() >= reference.mean_fps()


def test_optimizer_validation():
    with pytest.raises(ValueError):
        PlacementOptimizer(machines=())
    with pytest.raises(ValueError):
        PlacementOptimizer(machines=("mystery",))
    with pytest.raises(ValueError):
        PlacementOptimizer().best("beauty")


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sample_result():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=1, duration_s=5.0)


def test_summarize_result_is_json_friendly(sample_result):
    import json

    summary = summarize_result(sample_result)
    encoded = json.dumps(summary)
    decoded = json.loads(encoded)
    assert decoded["config"] == "C1"
    assert decoded["fps"] > 0
    assert "sift" in decoded["service_latency_ms"]


def test_store_roundtrip(tmp_path, sample_result):
    store = ResultStore(tmp_path / "results")
    store.save("baseline", sample_result)
    assert store.names() == ["baseline"]
    loaded = store.load("baseline")
    assert loaded["clients"] == 1
    store.delete("baseline")
    assert store.names() == []
    with pytest.raises(KeyError):
        store.load("baseline")


def test_store_rejects_bad_names(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(ValueError):
        store.save("../escape", {})
    with pytest.raises(ValueError):
        store.save("", {})


def test_diff_and_regressions(sample_result):
    before = summarize_result(sample_result)
    after = dict(before)
    after["fps"] = before["fps"] * 0.5          # regression
    after["e2e_ms"] = before["e2e_ms"] * 1.5    # regression
    after["jitter_ms"] = before["jitter_ms"]    # unchanged

    deltas = {d.metric: d for d in diff_results(before, after)}
    assert deltas["fps"].relative == pytest.approx(-0.5)
    assert deltas["e2e_ms"].relative == pytest.approx(0.5)
    assert "service_latency_ms.sift" in deltas

    flagged = {d.metric for d in regressions(before, after)}
    assert "fps" in flagged
    assert "e2e_ms" in flagged
    assert "jitter_ms" not in flagged


def test_regressions_quiet_for_identical_runs(sample_result):
    summary = summarize_result(sample_result)
    assert regressions(summary, dict(summary)) == []


# ----------------------------------------------------------------------
# ASCII chart helpers
# ----------------------------------------------------------------------
def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 2, 1, 0])
    assert len(line) == 7
    assert line[0] == "▁"
    assert line[3] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""


def test_bar_chart_rendering():
    chart = bar_chart([("scatter", 5.0), ("scatter++", 15.0)],
                      width=20, unit=" fps")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 20  # the max fills the width
    assert lines[0].count("#") == pytest.approx(7, abs=1)
    assert "15.00 fps" in lines[1]


def test_bar_chart_empty():
    assert bar_chart([]) == ""


def test_percentile_e2e(sample_result):
    p95 = sample_result.percentile_e2e_ms(95.0)
    p50 = sample_result.percentile_e2e_ms(50.0)
    assert p95 >= p50 > 0
    assert p50 == pytest.approx(sample_result.median_e2e_ms())
    import pytest as _pytest
    with _pytest.raises(ValueError):
        sample_result.percentile_e2e_ms(0.0)


def test_summary_includes_tail_latency(sample_result):
    summary = summarize_result(sample_result)
    assert summary["p95_e2e_ms"] >= summary["e2e_ms"] * 0.8


# ----------------------------------------------------------------------
# Atomic writes, concurrent writers, merging
# ----------------------------------------------------------------------
def test_summary_carries_trace_digest(sample_result):
    summary = summarize_result(sample_result)
    assert summary["trace_digest"] == sample_result.trace_digest
    assert isinstance(summary["trace_digest"], str)
    assert len(summary["trace_digest"]) == 32


def test_failed_save_preserves_previous_entry(tmp_path):
    store = ResultStore(tmp_path)
    store.save("cell", {"fps": 30.0})
    with pytest.raises(TypeError):  # not JSON-serializable
        store.save("cell", {"fps": object()})
    # The old entry is untouched and no temp litter remains.
    assert store.load("cell") == {"fps": 30.0}
    assert [p.name for p in tmp_path.iterdir()] == ["cell.json"]


def test_save_leaves_no_temp_files(tmp_path):
    store = ResultStore(tmp_path)
    for index in range(20):
        store.save("cell", {"value": index})
    assert [p.name for p in tmp_path.iterdir()] == ["cell.json"]
    assert store.load("cell") == {"value": 19}


def test_concurrent_writers_never_corrupt(tmp_path):
    """Hammer one entry from many threads; readers must always see a
    complete JSON document (the old write_text path could expose a
    truncated file mid-write)."""
    import json
    import threading

    store = ResultStore(tmp_path)
    payload = {"values": list(range(5000))}  # big enough to straddle
    store.save("hot", payload)               # one write() buffer
    errors = []
    stop = threading.Event()

    def writer():
        for __ in range(30):
            try:
                store.save("hot", payload)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

    def reader():
        while not stop.is_set():
            try:
                loaded = store.load("hot")
                assert loaded == payload
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

    writers = [threading.Thread(target=writer) for __ in range(4)]
    readers = [threading.Thread(target=reader) for __ in range(2)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    assert errors == []
    assert json.loads((tmp_path / "hot.json").read_text()) == payload


def test_concurrent_process_writers(tmp_path):
    """Multiple worker processes writing distinct cells — the sharded
    campaign's store access pattern."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=4) as pool:
        list(pool.map(_store_stress_write,
                      [(str(tmp_path), f"cell-{i}", i)
                       for i in range(12)]))
    store = ResultStore(tmp_path)
    assert store.names() == sorted(f"cell-{i}" for i in range(12))
    for index in range(12):
        assert store.load(f"cell-{index}") == {"value": index}


def _store_stress_write(args):
    directory, name, value = args
    store = ResultStore(directory)
    for __ in range(10):
        store.save(name, {"value": value})


def test_merge_stores(tmp_path):
    target = ResultStore(tmp_path / "campaign")
    target.save("a", {"fps": 1.0})
    shard = ResultStore(tmp_path / "shard0")
    shard.save("a", {"fps": 2.0})
    shard.save("b", {"fps": 3.0})

    merged = target.merge(shard)
    assert merged == ["a", "b"]
    assert target.load("a") == {"fps": 2.0}
    assert target.load("b") == {"fps": 3.0}

    # Without overwrite, existing entries win.
    shard.save("a", {"fps": 9.0})
    assert target.merge(tmp_path / "shard0", overwrite=False) == []
    assert target.load("a") == {"fps": 2.0}
