"""Unit tests for PCA, the GMM and Fisher-vector encoding."""

import numpy as np
import pytest

from repro.vision.fisher import FisherEncoder, GaussianMixture
from repro.vision.pca import Pca


# ----------------------------------------------------------------------
# PCA
# ----------------------------------------------------------------------
def test_pca_recovers_dominant_direction():
    rng = np.random.default_rng(0)
    direction = np.array([3.0, 4.0]) / 5.0
    data = rng.normal(0, 5, (500, 1))[:, 0:1] * direction[None, :]
    data += rng.normal(0, 0.1, data.shape)
    pca = Pca(1).fit(data)
    component = pca.components_[0]
    alignment = abs(component @ direction)
    assert alignment == pytest.approx(1.0, abs=0.01)


def test_pca_transform_decorrelates():
    rng = np.random.default_rng(1)
    data = rng.normal(0, 1, (200, 4))
    data[:, 1] = data[:, 0] * 2.0 + rng.normal(0, 0.01, 200)
    projected = Pca(2).fit_transform(data)
    covariance = np.cov(projected.T)
    assert abs(covariance[0, 1]) < 0.05


def test_pca_explained_variance_sorted():
    rng = np.random.default_rng(2)
    data = rng.normal(0, 1, (100, 6)) * np.array([5, 3, 2, 1, 0.5, 0.1])
    pca = Pca(4).fit(data)
    ev = pca.explained_variance_
    assert all(ev[i] >= ev[i + 1] for i in range(len(ev) - 1))


def test_pca_inverse_reconstructs_low_rank_data():
    rng = np.random.default_rng(3)
    basis = rng.normal(0, 1, (2, 8))
    coefficients = rng.normal(0, 1, (100, 2))
    data = coefficients @ basis
    pca = Pca(2).fit(data)
    reconstructed = pca.inverse_transform(pca.transform(data))
    assert np.allclose(reconstructed, data, atol=1e-8)


def test_pca_transform_single_vector():
    rng = np.random.default_rng(4)
    data = rng.normal(0, 1, (50, 5))
    pca = Pca(3).fit(data)
    single = pca.transform(data[0])
    assert single.shape == (1, 3)


def test_pca_validation():
    with pytest.raises(ValueError):
        Pca(0)
    with pytest.raises(ValueError):
        Pca(2).fit(np.zeros((1, 4)))
    with pytest.raises(ValueError):
        Pca(10).fit(np.zeros((5, 4)))
    with pytest.raises(RuntimeError):
        Pca(2).transform(np.zeros((3, 4)))


# ----------------------------------------------------------------------
# GMM
# ----------------------------------------------------------------------
def two_cluster_data(separation=8.0, n=200, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (n, 2))
    b = rng.normal(separation, 1, (n, 2))
    return np.vstack([a, b])


def test_gmm_finds_two_clusters():
    data = two_cluster_data()
    gmm = GaussianMixture(2, seed=1).fit(data)
    means = sorted(gmm.means_[:, 0])
    assert means[0] == pytest.approx(0.0, abs=0.5)
    assert means[1] == pytest.approx(8.0, abs=0.5)
    assert gmm.weights_ == pytest.approx([0.5, 0.5], abs=0.05)


def test_gmm_responsibilities_assign_correctly():
    data = two_cluster_data()
    gmm = GaussianMixture(2, seed=1).fit(data)
    gamma = gmm.responsibilities(np.array([[0.0, 0.0], [8.0, 8.0]]))
    assert gamma.shape == (2, 2)
    assert gamma[0].sum() == pytest.approx(1.0)
    # Each probe point is confidently assigned to a different component.
    assert gamma[0].max() > 0.99
    assert gamma[1].max() > 0.99
    assert np.argmax(gamma[0]) != np.argmax(gamma[1])


def test_gmm_variance_floor():
    data = np.zeros((50, 3))  # degenerate: zero variance everywhere
    gmm = GaussianMixture(2, seed=0, min_variance=1e-3).fit(data)
    assert (gmm.variances_ >= 1e-3).all()


def test_gmm_validation():
    with pytest.raises(ValueError):
        GaussianMixture(0)
    with pytest.raises(ValueError):
        GaussianMixture(10).fit(np.zeros((3, 2)))
    with pytest.raises(RuntimeError):
        GaussianMixture(2).responsibilities(np.zeros((3, 2)))


# ----------------------------------------------------------------------
# Fisher vectors
# ----------------------------------------------------------------------
def fitted_gmm(k=3, d=4, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1, (300, d)) + rng.integers(
        0, 3, (300, 1)) * 4.0
    return GaussianMixture(k, seed=seed).fit(data)


def test_fisher_dimension():
    gmm = fitted_gmm(k=3, d=4)
    encoder = FisherEncoder(gmm)
    assert encoder.dimension == 2 * 3 * 4


def test_fisher_unit_norm():
    gmm = fitted_gmm()
    encoder = FisherEncoder(gmm)
    rng = np.random.default_rng(1)
    vector = encoder.encode(rng.normal(0, 1, (50, 4)))
    assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-6)


def test_fisher_empty_input_is_zero_vector():
    encoder = FisherEncoder(fitted_gmm())
    vector = encoder.encode(np.empty((0, 4)))
    assert vector.shape == (encoder.dimension,)
    assert np.all(vector == 0.0)


def test_fisher_similar_sets_encode_similarly():
    encoder = FisherEncoder(fitted_gmm())
    rng = np.random.default_rng(2)
    base = rng.normal(0, 1, (80, 4))
    perturbed = base + rng.normal(0, 0.01, base.shape)
    different = rng.normal(6, 1, (80, 4))
    v_base = encoder.encode(base)
    v_near = encoder.encode(perturbed)
    v_far = encoder.encode(different)
    assert v_base @ v_near > 0.99
    assert v_base @ v_near > v_base @ v_far


def test_fisher_single_descriptor():
    encoder = FisherEncoder(fitted_gmm())
    vector = encoder.encode(np.ones(4))
    assert vector.shape == (encoder.dimension,)


def test_fisher_requires_fitted_gmm():
    with pytest.raises(ValueError):
        FisherEncoder(GaussianMixture(2))
