"""Regenerate the golden determinism digests.

Run from the repo root after an *intentional* simulation-behaviour
change::

    PYTHONPATH=src python tests/golden/regenerate_determinism.py

The script replays the contract campaign twice (refusing to write if
the two replays disagree — that would mean nondeterminism, which a
golden file cannot paper over) and rewrites
``tests/golden/determinism_digests.json``.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                       .parents[2] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from repro.experiments.campaign import run_campaign  # noqa: E402

from tests.test_determinism import (  # noqa: E402
    CONTRACT_CAMPAIGN,
    GOLDEN_PATH,
    _digest_map,
)


def main() -> int:
    first = _digest_map(run_campaign(CONTRACT_CAMPAIGN))
    second = _digest_map(run_campaign(CONTRACT_CAMPAIGN))
    if first != second:
        print("FATAL: two back-to-back runs disagree — the kernel is "
              "nondeterministic; fix that before regenerating.")
        return 1
    GOLDEN_PATH.write_text(json.dumps(
        {"campaign": CONTRACT_CAMPAIGN.name,
         "duration_s": CONTRACT_CAMPAIGN.duration_s,
         "digests": first}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(first)} digests to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
