"""Regenerate the golden determinism digests.

Run from the repo root after an *intentional* simulation-behaviour
change::

    PYTHONPATH=src python tests/golden/regenerate_determinism.py

The script replays the contract campaign twice (refusing to write if
the two replays disagree — that would mean nondeterminism, which a
golden file cannot paper over) and rewrites
``tests/golden/determinism_digests.json``.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                       .parents[2] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from repro.experiments.campaign import run_campaign  # noqa: E402

from tests.test_determinism import (  # noqa: E402
    CONTRACT_CAMPAIGN,
    FLOW_CAMPAIGN,
    FLOW_GOLDEN_PATH,
    GOLDEN_PATH,
    _digest_map,
)


def _regenerate(campaign, path) -> bool:
    first = _digest_map(run_campaign(campaign))
    second = _digest_map(run_campaign(campaign))
    if first != second:
        print(f"FATAL: two back-to-back runs of {campaign.name} "
              "disagree — the kernel is nondeterministic; fix that "
              "before regenerating.")
        return False
    path.write_text(json.dumps(
        {"campaign": campaign.name,
         "duration_s": campaign.duration_s,
         "digests": first}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(first)} digests to {path}")
    return True


def main() -> int:
    ok = _regenerate(CONTRACT_CAMPAIGN, GOLDEN_PATH)
    ok = _regenerate(FLOW_CAMPAIGN, FLOW_GOLDEN_PATH) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
