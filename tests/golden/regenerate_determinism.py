"""Regenerate the golden determinism digests.

Run from the repo root after an *intentional* simulation-behaviour
change::

    PYTHONPATH=src python tests/golden/regenerate_determinism.py

The script replays the contract campaign twice (refusing to write if
the two replays disagree — that would mean nondeterminism, which a
golden file cannot paper over), then replays it a third time through
the content-addressed cell cache (refusing to write if the cached
replay disagrees — a golden regenerated past a broken cache would pin
the wrong digests), and rewrites
``tests/golden/determinism_digests.json``.
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                       .parents[2] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from repro.experiments.campaign import run_campaign  # noqa: E402

from tests.test_determinism import (  # noqa: E402
    CONTRACT_CAMPAIGN,
    FLOW_CAMPAIGN,
    FLOW_GOLDEN_PATH,
    GOLDEN_PATH,
    _digest_map,
)


def _cached_replay(campaign):
    """Digests of a cold cache-on run, then of a fully-cached rerun."""
    with tempfile.TemporaryDirectory(prefix="regen-cells-") as cells:
        cold = run_campaign(campaign, cache_dir=cells)
        warm = run_campaign(campaign, cache_dir=cells)
        tasks = len(campaign.cells) * len(campaign.seeds)
        assert warm.cache["hits"] == tasks, "rerun was not fully cached"
        return _digest_map(cold), _digest_map(warm)


def _regenerate(campaign, path) -> bool:
    first = _digest_map(run_campaign(campaign))
    second = _digest_map(run_campaign(campaign))
    if first != second:
        print(f"FATAL: two back-to-back runs of {campaign.name} "
              "disagree — the kernel is nondeterministic; fix that "
              "before regenerating.")
        return False
    cold, warm = _cached_replay(campaign)
    if cold != first or warm != first:
        print(f"FATAL: the cell-cache replay of {campaign.name} "
              "disagrees with the uncached run — fix the cache before "
              "regenerating (a golden written past a broken cache "
              "would pin the wrong digests).")
        return False
    path.write_text(json.dumps(
        {"campaign": campaign.name,
         "duration_s": campaign.duration_s,
         "digests": first}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(first)} digests to {path}")
    return True


def main() -> int:
    ok = _regenerate(CONTRACT_CAMPAIGN, GOLDEN_PATH)
    ok = _regenerate(FLOW_CAMPAIGN, FLOW_GOLDEN_PATH) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
