"""Deeper network-substrate tests: fragmentation, bandwidth, ARQ."""

import numpy as np
import pytest

from repro.net import Address, Network
from repro.net.link import Link
from repro.net.rpc import RETRANSMIT_TIMEOUT_S, reliable_path_delay
from repro.sim import Simulator


def make_link(**kwargs):
    sim = Simulator()
    defaults = dict(latency_s=0.001, bandwidth_bps=1e9,
                    rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return sim, Link(sim, "a", "b", **defaults)


# ----------------------------------------------------------------------
# Per-fragment loss
# ----------------------------------------------------------------------
def test_small_packet_loss_matches_configured_rate():
    __, link = make_link(loss=0.01)
    n = 20_000
    dropped = sum(1 for __i in range(n)
                  if link.transmit(100) is None)
    assert dropped / n == pytest.approx(0.01, abs=0.005)


def test_large_frame_loss_amplified_by_fragments():
    """A 180 KB frame is ~123 fragments: 0.3% fragment loss becomes
    ≈31% frame loss — the mechanism behind Fig. 11."""
    __, link = make_link(loss=0.003)
    n = 5_000
    size = 180 * 1024
    fragments = -(-size // Link.MTU_BYTES)
    expected = 1.0 - (1.0 - 0.003) ** fragments
    dropped = sum(1 for __i in range(n)
                  if link.transmit(size) is None)
    assert dropped / n == pytest.approx(expected, abs=0.03)


def test_fragment_count_boundaries():
    """Loss amplification steps exactly at MTU multiples."""
    sim = Simulator()
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    one = Link(sim, "a", "b", latency_s=0, bandwidth_bps=1e9,
               loss=0.05, rng=rng_a)
    two = Link(sim, "a", "b", latency_s=0, bandwidth_bps=1e9,
               loss=0.05, rng=rng_b)
    n = 10_000
    single = sum(1 for __ in range(n)
                 if one.transmit(Link.MTU_BYTES) is None) / n
    double = sum(1 for __ in range(n)
                 if two.transmit(Link.MTU_BYTES + 1) is None) / n
    assert single == pytest.approx(0.05, abs=0.01)
    assert double == pytest.approx(1 - 0.95 ** 2, abs=0.01)


# ----------------------------------------------------------------------
# Bandwidth / queueing
# ----------------------------------------------------------------------
def test_overloaded_link_builds_queue_delay():
    """180 KB frames at 30 FPS over 40 Mbps: serialization (≈37 ms)
    exceeds the frame interval, so delivery delay grows frame over
    frame — classic egress queue build-up."""
    sim, link = make_link(latency_s=0.0, bandwidth_bps=40e6)
    delays = []

    def sender():
        for __ in range(20):
            delay = link.transmit(180 * 1024)
            delays.append(delay)
            yield sim.timeout(1 / 30)

    sim.spawn(sender())
    sim.run()
    assert delays[0] == pytest.approx(180 * 1024 * 8 / 40e6)
    # Strictly increasing backlog.
    assert all(b > a for a, b in zip(delays, delays[1:]))
    assert delays[-1] > delays[0] + 10 * (delays[0] - 1 / 30)


def test_underloaded_link_has_constant_delay():
    sim, link = make_link(latency_s=0.0, bandwidth_bps=1e9)
    delays = []

    def sender():
        for __ in range(10):
            delays.append(link.transmit(180 * 1024))
            yield sim.timeout(1 / 30)

    sim.spawn(sender())
    sim.run()
    assert max(delays) == pytest.approx(min(delays))


# ----------------------------------------------------------------------
# reliable_path_delay (the ARQ building block)
# ----------------------------------------------------------------------
def make_network(loss=0.0):
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.002, loss=loss)
    net.add_link("b", "c", rtt_s=0.004)
    return sim, net


def test_reliable_delay_clean_path_equals_datagram_delay():
    __, net = make_network(loss=0.0)
    delay = reliable_path_delay(net, "a", "c", size_bytes=1000)
    # one-way a->b (1 ms) + b->c (2 ms) + serialization.
    assert delay == pytest.approx(0.003 + 2 * 1000 * 8 / 1e9)


def test_reliable_delay_same_node_is_zero():
    __, net = make_network()
    assert reliable_path_delay(net, "a", "a", size_bytes=10) == 0.0


def test_reliable_delay_lossy_path_adds_retransmissions():
    __, net = make_network(loss=0.5)
    delays = [reliable_path_delay(net, "a", "b", size_bytes=1000)
              for __ in range(300)]
    delays = [d for d in delays if d is not None]
    assert delays, "ARQ should almost always succeed at 50% loss"
    base = min(delays)
    retransmitted = [d for d in delays if d > base + 0.001]
    assert retransmitted, "expected some retransmission penalties"
    # Penalties are integer multiples of the retransmission timeout.
    for delay in retransmitted[:20]:
        multiples = (delay - base) / RETRANSMIT_TIMEOUT_S
        assert multiples == pytest.approx(round(multiples), abs=0.05)


def test_reliable_delay_total_loss_returns_none():
    __, net = make_network(loss=1.0)
    assert reliable_path_delay(net, "a", "b", size_bytes=10) is None


# ----------------------------------------------------------------------
# Routing cache behaviour
# ----------------------------------------------------------------------
def test_route_cache_invalidated_by_new_link():
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.010)
    net.add_link("b", "c", rtt_s=0.010)
    assert net.route("a", "c") == ["a", "b", "c"]
    # A new direct link must replace the cached two-hop route.
    net.add_link("a", "c", rtt_s=0.002)
    assert net.route("a", "c") == ["a", "c"]
