"""Unit tests for the named RNG registry."""

import numpy as np

from repro.sim import RngRegistry


def test_same_seed_same_name_reproduces():
    a = RngRegistry(seed=7).stream("link.jitter")
    b = RngRegistry(seed=7).stream("link.jitter")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_are_independent():
    reg = RngRegistry(seed=7)
    a = reg.stream("alpha").random(16)
    b = reg.stream("beta").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(16)
    b = RngRegistry(seed=2).stream("x").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_instance():
    reg = RngRegistry(seed=3)
    assert reg.stream("s") is reg.stream("s")


def test_creation_order_does_not_matter():
    forward = RngRegistry(seed=11)
    first = forward.stream("one").random(8)
    __ = forward.stream("two").random(8)

    backward = RngRegistry(seed=11)
    __ = backward.stream("two").random(8)
    again = backward.stream("one").random(8)
    assert np.array_equal(first, again)


def test_fork_produces_distinct_registry():
    base = RngRegistry(seed=5)
    child_a = base.fork(1)
    child_b = base.fork(2)
    assert child_a.seed != child_b.seed
    a = child_a.stream("x").random(8)
    b = child_b.stream("x").random(8)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic():
    a = RngRegistry(seed=5).fork(3).stream("x").random(8)
    b = RngRegistry(seed=5).fork(3).stream("x").random(8)
    assert np.array_equal(a, b)
