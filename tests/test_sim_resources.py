"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, SimulationError, Store, StoreFullError


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.try_acquire()
    assert res.try_acquire()
    assert not res.try_acquire()
    assert res.in_use == 2
    assert res.available == 0


def test_resource_release_wakes_fifo_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold):
        yield res.acquire()
        order.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        res.release()
        order.append((tag, "out", sim.now))

    sim.spawn(worker("a", 2.0))
    sim.spawn(worker("b", 1.0))
    sim.run()
    assert order == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_queued_count():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.acquire()
        yield sim.timeout(10.0)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run(until=1.0)
    assert res.queued == 1
    sim.run()
    assert res.queued == 0


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.spawn(consumer())
    for value in (1, 2, 3):
        store.put_nowait(value)
    sim.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(4.0)
        store.put_nowait("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(4.0, "late")]


def test_store_capacity_enforced():
    sim = Simulator()
    store = Store(sim, capacity=2)
    store.put_nowait(1)
    store.put_nowait(2)
    with pytest.raises(StoreFullError):
        store.put_nowait(3)
    assert store.offer(3) is False
    assert len(store) == 2


def test_store_put_bypasses_queue_when_getter_waiting():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put_nowait("fills")
    got = []

    def consumer():
        first = yield store.get()
        second = yield store.get()
        got.append((first, second))

    sim.spawn(consumer())
    sim.run(until=0.5)
    # Consumer drained the single slot and is now waiting; a put goes
    # straight to it even though capacity is 1.
    assert store.offer("direct")
    sim.run()
    assert got == [("fills", "direct")]


def test_store_get_nowait_and_drain():
    sim = Simulator()
    store = Store(sim)
    with pytest.raises(LookupError):
        store.get_nowait()
    store.put_nowait("a")
    store.put_nowait("b")
    assert store.get_nowait() == "a"
    store.put_nowait("c")
    assert store.drain() == ["b", "c"]
    assert len(store) == 0


def test_store_peek_all_does_not_remove():
    sim = Simulator()
    store = Store(sim)
    store.put_nowait(1)
    store.put_nowait(2)
    assert store.peek_all() == [1, 2]
    assert len(store) == 2


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)
