"""Unit tests for the flow-control substrate (repro.flow)."""

import pytest

from repro.dsp.record import FrameBatch, FrameRecord
from repro.experiments.runner import run_scatterpp_experiment
from repro.flow import (
    ADMISSION_POLICIES,
    AlwaysAdmit,
    CreditAdvertisement,
    CreditLedger,
    FlowConfig,
    QueueGradientAdmission,
    TokenBucket,
    TokenBucketAdmission,
    build_admission,
    default_flow_config,
    neutral_flow_config,
)
from repro.net.addresses import Address
from repro.scatter.config import baseline_configs
from repro.scatterpp.sidecar import SidecarStats


# ----------------------------------------------------------------------
# FlowConfig
# ----------------------------------------------------------------------
def test_flow_config_defaults_validate():
    flow = default_flow_config()
    assert flow.admission in ADMISSION_POLICIES
    assert flow.batch_max >= 1
    assert flow.credits and flow.client_pacing


def test_flow_config_rejects_bad_values():
    for overrides in ({"admission": "nope"}, {"batch_max": 0},
                      {"admission_rate_fps": 0.0},
                      {"admission_burst": 0},
                      {"gradient_lookahead_s": -1.0},
                      {"advertise_interval_s": 0.0},
                      {"credit_ttl_s": 0.0},
                      {"upstream_window_s": 0.0},
                      {"client_rate_fps": -5.0},
                      {"client_burst": 0}):
        with pytest.raises(ValueError):
            FlowConfig(**overrides)


def test_with_overrides_revalidates():
    flow = default_flow_config()
    assert flow.with_overrides(batch_max=8).batch_max == 8
    assert flow.batch_max != 8  # frozen original untouched
    with pytest.raises(ValueError):
        flow.with_overrides(batch_max=0)


def test_neutral_config_disables_every_mechanism():
    neutral = neutral_flow_config()
    assert neutral.admission == "always"
    assert neutral.batch_max == 1
    assert not neutral.credits and not neutral.client_pacing
    assert build_admission(neutral) is None


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_token_bucket_burst_then_rate():
    bucket = TokenBucket(10.0, 3)
    takes = [bucket.take(0.0) for __ in range(4)]
    assert takes == [True, True, True, False]
    # 0.1 s refills exactly one token at 10/s.
    assert not bucket.take(0.05)
    assert bucket.take(0.1)
    assert bucket.granted == 4 and bucket.denied == 2


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(100.0, 2)
    assert bucket.tokens(1000.0) == 2.0


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(0.0, 1)
    with pytest.raises(ValueError):
        TokenBucket(1.0, 0)


def test_token_bucket_time_going_backwards_is_harmless():
    bucket = TokenBucket(10.0, 1)
    assert bucket.take(1.0)
    assert bucket.tokens(0.5) == bucket.tokens(1.0)  # no refill


# ----------------------------------------------------------------------
# CreditLedger
# ----------------------------------------------------------------------
def _ad(credits, seq, sent_s=0.0, instance="i0", service="sift"):
    return CreditAdvertisement(service=service, instance=instance,
                               credits=credits, seq=seq, sent_s=sent_s)


def test_ledger_cold_start_allows_sends():
    ledger = CreditLedger("sift")
    assert not ledger.has_signal(0.0)
    assert ledger.take(0.0)  # no signal => optimistic send


def test_ledger_tracks_and_spends_credits():
    ledger = CreditLedger("sift")
    ledger.update(_ad(2, seq=1), now=0.0)
    assert ledger.available(0.0) == 2
    assert ledger.take(0.0) and ledger.take(0.0)
    assert not ledger.take(0.0)  # drained: shed
    assert ledger.available(0.0) == 0  # never negative
    assert ledger.shortfalls == 1


def test_ledger_ignores_foreign_service_and_stale_seq():
    ledger = CreditLedger("sift")
    ledger.update(_ad(5, seq=2), now=0.0)
    ledger.update(_ad(9, seq=1), now=0.0)  # reordered: ignored
    ledger.update(_ad(9, seq=3, service="encoding"), now=0.0)
    assert ledger.available(0.0) == 5


def test_ledger_rejects_negative_advertisements():
    ledger = CreditLedger("sift")
    with pytest.raises(ValueError):
        ledger.update(_ad(-1, seq=1), now=0.0)


def test_ledger_ttl_expiry_restores_cold_start():
    ledger = CreditLedger("sift", ttl_s=0.5)
    ledger.update(_ad(0, seq=1, sent_s=0.0), now=0.0)
    assert not ledger.take(0.1)  # fresh zero-credit signal: shed
    assert ledger.take(1.0)  # signal expired: back to optimistic


def test_ledger_spends_from_richest_instance():
    ledger = CreditLedger("sift")
    ledger.update(_ad(1, seq=1, instance="a"), now=0.0)
    ledger.update(_ad(3, seq=1, instance="b"), now=0.0)
    assert ledger.take(0.0)
    assert ledger.available(0.0) == 3  # b went 3 -> 2, a kept 1


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
def test_build_admission_maps_always_to_none():
    assert build_admission(neutral_flow_config()) is None
    assert isinstance(
        build_admission(FlowConfig(admission="token-bucket")),
        TokenBucketAdmission)
    assert isinstance(
        build_admission(FlowConfig(admission="queue-gradient")),
        QueueGradientAdmission)


def test_always_admit_admits():
    policy = AlwaysAdmit()
    assert policy.admit(client_id=0, now=0.0, depth=10 ** 6,
                        target_depth=1)


def test_token_bucket_admission_is_per_client_fair():
    policy = TokenBucketAdmission(rate_fps=10.0, burst=2)
    # A hot client drains only its own bucket...
    hot = [policy.admit(client_id=0, now=0.0, depth=0, target_depth=8)
           for __ in range(5)]
    assert hot == [True, True, False, False, False]
    # ...the well-behaved client is untouched.
    assert policy.admit(client_id=1, now=0.0, depth=0, target_depth=8)


def test_queue_gradient_admits_inside_window():
    policy = QueueGradientAdmission(lookahead_s=0.05, rate_fps=1.0,
                                    burst=1)
    for step in range(5):
        assert policy.admit(client_id=0, now=step * 0.01, depth=0,
                            target_depth=8)


def test_queue_gradient_sheds_on_projected_overflow():
    policy = QueueGradientAdmission(lookahead_s=1.0, rate_fps=0.001,
                                    burst=1)
    # Depth ramping hard: projection breaks the window, so admission
    # falls back to the (nearly empty) per-client buckets.
    decisions = [policy.admit(client_id=0, now=0.001 * step,
                              depth=4 * step, target_depth=8)
                 for step in range(1, 8)]
    assert not all(decisions)


# ----------------------------------------------------------------------
# FrameBatch
# ----------------------------------------------------------------------
def _record(frame_number, size_bytes=1000):
    return FrameRecord(client_id=0, frame_number=frame_number,
                       reply_to=Address("nuc0", 9000), step="sift",
                       created_s=0.0, size_bytes=size_bytes)


def test_frame_batch_requires_two_records():
    with pytest.raises(ValueError):
        FrameBatch([_record(0)])
    batch = FrameBatch([_record(0, 100), _record(1, 200)])
    assert len(batch) == 2
    assert batch.size_bytes == 300


# ----------------------------------------------------------------------
# SidecarStats ratios
# ----------------------------------------------------------------------
def test_reject_ratio_is_separate_from_drop_ratio():
    stats = SidecarStats()
    stats.enqueued = 50
    stats.rejected = 50
    stats.dispatched = 50
    assert stats.reject_ratio() == pytest.approx(0.5)
    # Admission sheds half the arrivals, yet not one queue exit was a
    # stale drop — the old drop_ratio alone would report zero loss.
    assert stats.drop_ratio() == 0.0


def test_ratios_are_zero_without_traffic():
    stats = SidecarStats()
    assert stats.reject_ratio() == 0.0
    assert stats.drop_ratio() == 0.0
    assert stats.overflow_ratio() == 0.0


# ----------------------------------------------------------------------
# End-to-end behaviour of the wired substrate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def flow_run():
    return run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=8.0,
        flow=default_flow_config())


def _sidecars(result):
    return [instance.sidecar
            for service in ("primary", "sift", "encoding", "lsh",
                            "matching")
            for instance in result.pipeline.instances(service)]


def test_queue_wait_reservoir_samples_only_served_frames(flow_run):
    for sidecar in _sidecars(flow_run):
        assert sidecar.stats.queue_wait_samples_s.total == \
            sidecar.stats.dispatched


def test_queue_wait_contract_holds_without_flow():
    result = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=8.0)
    stale = 0
    for sidecar in _sidecars(result):
        assert sidecar.stats.queue_wait_samples_s.total == \
            sidecar.stats.dispatched
        stale += sidecar.stats.dropped_stale
    assert stale > 0  # the contract was exercised, not vacuous


def test_batched_dispatch_engages_under_load(flow_run):
    stats = [s.stats for s in _sidecars(flow_run)]
    assert sum(s.batched_rounds for s in stats) > 0
    assert sum(s.batched_frames for s in stats) > \
        sum(s.batched_rounds for s in stats)


def test_credit_advertisements_reach_clients(flow_run):
    paced = sum(c.frames_paced for c in flow_run.clients)
    sent = sum(c.frames_sent for c in flow_run.clients)
    assert 0 < paced < sent


def test_flow_summary_attached_and_serializable(flow_run):
    import json

    summary = flow_run.flow
    assert summary is not None
    assert summary["config"]["batch_max"] == \
        default_flow_config().batch_max
    assert set(summary["services"]) == {"primary", "sift", "encoding",
                                        "lsh", "matching"}
    for ledger in summary["services"].values():
        assert ledger["balance"] == 0
    json.dumps(summary)  # crosses process boundaries as JSON


def test_flow_requires_sidecars():
    with pytest.raises(ValueError):
        run_scatterpp_experiment(
            baseline_configs()["C1"], num_clients=1, duration_s=1.0,
            with_sidecars=False, flow=default_flow_config())
