"""Unit tests for scAtteR configuration and placements."""

import pytest

from repro.scatter.config import (
    PIPELINE_ORDER,
    PlacementConfig,
    SERVICE_MEMORY_BYTES,
    SERVICE_TIME_S,
    SERVICE_USES_GPU,
    WIRE_SIZES,
    baseline_configs,
    cloud_config,
    hybrid_config,
    scaling_config,
    split_config,
    uniform_config,
)


def test_pipeline_order():
    assert PIPELINE_ORDER == ["primary", "sift", "encoding", "lsh",
                              "matching"]


def test_every_service_has_constants():
    for service in PIPELINE_ORDER:
        assert SERVICE_TIME_S[service] > 0
        assert SERVICE_MEMORY_BYTES[service] > 0
        assert service in SERVICE_USES_GPU


def test_only_primary_is_cpu_only():
    assert not SERVICE_USES_GPU["primary"]
    for service in PIPELINE_ORDER[1:]:
        assert SERVICE_USES_GPU[service]


def test_single_client_compute_budget():
    """Per-service times sum to ≈36 ms, matching the paper's ≈40 ms
    E2E once network hops are added (§4)."""
    total = sum(SERVICE_TIME_S.values())
    assert 0.030 < total < 0.042


def test_wire_size_matches_paper():
    assert WIRE_SIZES["primary->sift"] == 180 * 1024


def test_baseline_configs_shapes():
    configs = baseline_configs()
    assert set(configs) == {"C1", "C2", "C12", "C21"}
    assert configs["C1"].machines_used() == ["e1"]
    assert configs["C2"].machines_used() == ["e2"]
    assert configs["C12"].placements["primary"] == ["e1"]
    assert configs["C12"].placements["matching"] == ["e2"]
    assert configs["C21"].placements["primary"] == ["e2"]
    assert configs["C21"].placements["matching"] == ["e1"]


def test_replica_vector():
    config = scaling_config([2, 2, 1, 1, 1])
    assert config.replica_vector() == [2, 2, 1, 1, 1]
    assert config.replicas("primary") == 2
    assert config.placements["primary"] == ["e2", "e1"]
    assert config.placements["encoding"] == ["e2"]


def test_scaling_config_name_defaults_to_vector():
    assert scaling_config([1, 2, 1, 1, 2]).name == "[1, 2, 1, 1, 2]"
    assert scaling_config([1, 2, 1, 1, 2], name="X").name == "X"


def test_scaling_config_validation():
    with pytest.raises(ValueError):
        scaling_config([1, 2, 3])
    with pytest.raises(ValueError):
        scaling_config([0, 1, 1, 1, 1])


def test_placement_config_validation():
    with pytest.raises(ValueError):
        PlacementConfig("bad", {"primary": ["e1"]})
    with pytest.raises(ValueError):
        PlacementConfig("bad", {s: [] for s in PIPELINE_ORDER})


def test_cloud_and_hybrid_configs():
    assert cloud_config().machines_used() == ["cloud"]
    hybrid = hybrid_config()
    assert hybrid.placements["primary"] == ["e1"]
    assert hybrid.placements["sift"] == ["cloud"]


def test_uniform_and_split_helpers():
    uniform = uniform_config("U", "e2")
    assert all(machines == ["e2"]
               for machines in uniform.placements.values())
    split = split_config("S", "e1", "e2")
    assert split.placements["sift"] == ["e1"]
    assert split.placements["encoding"] == ["e2"]
