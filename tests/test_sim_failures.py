"""Failure-path tests for the simulation kernel."""

import pytest

from repro.sim import AnyOf, Interrupt, Simulator, SimulationError
from repro.sim.kernel import Signal, Waitable


def test_signal_fail_raises_in_waiter():
    sim = Simulator()
    signal = sim.signal()
    caught = []

    def waiter():
        try:
            yield signal
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.spawn(waiter())
    sim.schedule(2.0, signal.fail, RuntimeError("boom"))
    sim.run()
    assert caught == [(2.0, "boom")]


def test_fail_after_fire_rejected():
    sim = Simulator()
    signal = sim.signal()
    signal.fire(1)
    with pytest.raises(SimulationError):
        signal.fail(RuntimeError("late"))
    with pytest.raises(SimulationError):
        signal.fire(2)


def test_any_of_propagates_child_failure():
    sim = Simulator()
    bad = sim.signal()
    caught = []

    def waiter():
        try:
            yield sim.any_of([bad, sim.timeout(10.0)])
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.schedule(1.0, bad.fail, ValueError("child died"))
    sim.run()
    assert caught == ["child died"]


def test_all_of_propagates_first_failure():
    sim = Simulator()
    bad = sim.signal()
    caught = []

    def waiter():
        try:
            yield sim.all_of([sim.timeout(1.0), bad])
        except ValueError:
            caught.append(sim.now)

    sim.spawn(waiter())
    sim.schedule(2.0, bad.fail, ValueError("x"))
    sim.run()
    assert caught == [2.0]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, [])]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise KeyError("kaput")

    outcomes = []

    def joiner():
        try:
            yield sim.spawn(crasher())
            outcomes.append("ok")
        except Exception as exc:  # noqa: BLE001 - test observes type
            outcomes.append(type(exc).__name__)

    sim.spawn(joiner())
    with pytest.raises(KeyError):
        sim.run()
    # The crash surfaced from run(); the joiner never completed.
    assert outcomes == []


def test_interrupt_with_cause_carried():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, {"reason": "rebalance"})
    sim.run()
    assert seen == [{"reason": "rebalance"}]


def test_double_interrupt_delivers_both():
    sim = Simulator()
    count = []

    def sleeper():
        for __ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                count.append(sim.now)

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, "first")
    sim.schedule(1.0, proc.interrupt, "second")
    sim.run()
    assert len(count) == 2


def test_yielding_non_waitable_raises():
    sim = Simulator()

    def bad():
        yield 42  # not a Waitable

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_waitable_value_delivery_to_multiple_waiters():
    sim = Simulator()
    signal = sim.signal()
    got = []

    def waiter(tag):
        value = yield signal
        got.append((tag, value))

    for tag in ("a", "b", "c"):
        sim.spawn(waiter(tag))
    sim.schedule(1.0, signal.fire, 99)
    sim.run()
    assert sorted(got) == [("a", 99), ("b", 99), ("c", 99)]
