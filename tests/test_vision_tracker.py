"""Tests for cross-frame object tracking."""

import numpy as np
import pytest

from repro.vision.recognizer import Recognition
from repro.vision.tracker import ObjectTracker


def make_recognition(name="monitor", centre=(50.0, 40.0), size=20.0,
                     inliers=10):
    cx, cy = centre
    half = size / 2.0
    corners = np.array([[cx - half, cy - half], [cx + half, cy - half],
                        [cx + half, cy + half], [cx - half, cy + half]])
    return Recognition(name=name, corners=corners,
                       num_inliers=inliers, similarity=0.9,
                       mean_error=0.5)


def test_track_created_and_confirmed():
    tracker = ObjectTracker(min_hits=2)
    assert tracker.update(0, [make_recognition()]) == []  # immature
    confirmed = tracker.update(1, [make_recognition()])
    assert len(confirmed) == 1
    track = confirmed[0]
    assert track.name == "monitor"
    assert track.hits == 2
    assert not track.coasting


def test_track_follows_moving_object():
    tracker = ObjectTracker(min_hits=1, smoothing=0.8)
    for frame in range(10):
        centre = (50.0 + 3.0 * frame, 40.0)
        tracks = tracker.update(frame, [make_recognition(centre=centre)])
    assert len(tracks) == 1
    track = tracks[0]
    # The smoothed centre follows the motion.
    assert track.centre[0] == pytest.approx(50.0 + 27.0, abs=4.0)
    # And the estimated velocity points along +x.
    assert track.velocity[0] > 1.0
    assert abs(track.velocity[1]) < 0.5


def test_coasting_through_recognition_gap():
    tracker = ObjectTracker(min_hits=1, max_misses=4, smoothing=1.0)
    for frame in range(5):
        tracker.update(frame, [make_recognition(
            centre=(50.0 + 2.0 * frame, 40.0))])
    before_gap = tracker.confirmed_tracks()[0].centre.copy()
    # Three frames with no recognition: the track coasts forward.
    for frame in range(5, 8):
        tracks = tracker.update(frame, [])
        assert len(tracks) == 1
        assert tracks[0].coasting
    after_gap = tracker.confirmed_tracks()[0].centre
    assert after_gap[0] > before_gap[0] + 3.0
    # Recognition returns: the same track absorbs it (no new id).
    tracks = tracker.update(8, [make_recognition(centre=(66.0, 40.0))])
    assert tracks[0].track_id == 1
    assert not tracks[0].coasting


def test_track_retired_after_max_misses():
    tracker = ObjectTracker(min_hits=1, max_misses=2)
    tracker.update(0, [make_recognition()])
    for frame in range(1, 5):
        tracker.update(frame, [])
    assert tracker.tracks == []


def test_distinct_objects_get_distinct_tracks():
    tracker = ObjectTracker(min_hits=1)
    recognitions = [make_recognition("monitor", centre=(40.0, 30.0)),
                    make_recognition("keyboard", centre=(120.0, 90.0))]
    tracks = tracker.update(0, recognitions)
    assert {track.name for track in tracks} == {"monitor", "keyboard"}
    ids = {track.track_id for track in tracks}
    assert len(ids) == 2


def test_same_name_far_away_spawns_new_track():
    tracker = ObjectTracker(min_hits=1, max_association_distance=20.0)
    tracker.update(0, [make_recognition(centre=(40.0, 40.0))])
    tracks = tracker.update(1, [make_recognition(centre=(140.0, 40.0))])
    # Too far to be the same physical object: two tracks now exist.
    assert len(tracker.tracks) == 2


def test_name_mismatch_never_associates():
    tracker = ObjectTracker(min_hits=1)
    tracker.update(0, [make_recognition("monitor")])
    tracker.update(1, [make_recognition("keyboard")])
    names = sorted(track.name for track in tracker.tracks)
    assert names == ["keyboard", "monitor"]


def test_frames_must_advance():
    tracker = ObjectTracker()
    tracker.update(5, [])
    with pytest.raises(ValueError):
        tracker.update(5, [])
    with pytest.raises(ValueError):
        tracker.update(3, [])


def test_validation():
    with pytest.raises(ValueError):
        ObjectTracker(smoothing=0.0)
    with pytest.raises(ValueError):
        ObjectTracker(max_association_distance=0.0)
    with pytest.raises(ValueError):
        ObjectTracker(min_hits=0)


def test_tracking_stabilizes_real_recognitions():
    """End to end: tracking fills the per-frame recognition gaps seen
    on the synthetic video (the stability the paper's FPS metric is a
    proxy for)."""
    from repro.vision.dataset import WorkplaceDataset
    from repro.vision.recognizer import RecognizerTrainer
    from repro.vision.sift import SiftExtractor
    from repro.vision.video import SyntheticVideo

    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.01,
                              max_keypoints=300)
    recognizer = RecognizerTrainer(seed=0).train(dataset, extractor)
    video = SyntheticVideo(seed=0)
    tracker = ObjectTracker(min_hits=2, max_misses=8)

    raw_counts = []
    tracked_counts = []
    for frame_index in range(0, 150, 10):
        frame = video.frame(frame_index)
        result = recognizer.process_frame(frame.image)
        tracks = tracker.update(frame_index, result.recognitions)
        raw_counts.append(len(result.recognitions))
        tracked_counts.append(len(tracks))

    # Once warmed up, the tracker holds at least as many objects as
    # raw recognition provides, and its coverage is steadier.
    assert np.mean(tracked_counts[2:]) >= np.mean(raw_counts[2:])
    assert np.std(tracked_counts[2:]) <= np.std(raw_counts[2:]) + 0.2
