"""Unit tests for the placement/autoscaler search stack.

Covers the genome grammar end to end (every paper static round-trips
through its ``opt:`` spec and back through the campaign layer's
``resolve_placement``), the oracle's neutrality (a scaler-less genome
replays the scatterpp-flow trace bit-identically), the scaler-genes
path (an autoscaler really attaches and its decision log surfaces on
the result), and a tiny end-to-end budgeted search producing a valid,
JSON-serializable :class:`OptimizationReport` — including the CLI
entry point.
"""

import json

import pytest

from repro.experiments.campaign import Campaign, resolve_placement
from repro.orchestra.optimize import (Genome, OptimizeConfig,
                                      OptimizeError, ScalerGenes,
                                      SearchSpace, is_genome_spec,
                                      run_search)
from repro.scatter.config import (PIPELINE_ORDER, baseline_configs,
                                  cloud_config, hybrid_config,
                                  scaling_config)


def all_statics():
    configs = dict(baseline_configs())
    configs["cloud"] = cloud_config()
    configs["hybrid"] = hybrid_config()
    for vector in ([2, 2, 1, 1, 1], [1, 2, 1, 1, 2], [1, 2, 2, 1, 2]):
        key = "x".join(str(c) for c in vector)
        configs[key] = scaling_config(vector)
    return configs


# ----------------------------------------------------------------------
# Genome grammar
# ----------------------------------------------------------------------
def test_round_trip_every_static_placement():
    for name, placement in all_statics().items():
        genome = Genome.from_placement(placement)
        spec = genome.encode()
        assert is_genome_spec(spec), name
        assert Genome.decode(spec) == genome, name
        assert genome.to_placement().placements == {
            s: list(placement.placements[s]) for s in PIPELINE_ORDER}


def test_round_trip_with_scaler_genes():
    genome = Genome.from_placement(
        baseline_configs()["C1"],
        scaler=ScalerGenes(drop_ratio=0.02, queue_depth=32,
                           max_replicas=4, machine="e2"))
    decoded = Genome.decode(genome.encode())
    assert decoded == genome
    assert decoded.scaler.queue_depth == 32
    assert "e2" in decoded.machines_used()


def test_spec_grammar_is_comma_free():
    for placement in all_statics().values():
        spec = Genome.from_placement(
            placement, scaler=ScalerGenes()).encode()
        assert "," not in spec


@pytest.mark.parametrize("bad", [
    "C1",                                     # not a genome spec
    "opt:primary=e1",                         # missing services
    "opt:sift=e1;primary=e1;encoding=e1;lsh=e1;matching=e1",  # order
    "opt:primary=;sift=e1;encoding=e1;lsh=e1;matching=e1",    # empty
    "opt:primary=e1;sift=e1;encoding=e1;lsh=e1;matching=e1@bogus",
    "opt:primary=e1;sift=e1;encoding=e1;lsh=e1;matching=e1"
    "@as=dropX+depth16+max3+e1",
])
def test_decode_rejects_malformed_specs(bad):
    with pytest.raises(OptimizeError):
        Genome.decode(bad)


def test_genome_validates_shape_and_machine_names():
    with pytest.raises(OptimizeError):
        Genome(machines=(("e1",),) * 4)        # wrong service count
    with pytest.raises(OptimizeError):
        Genome(machines=((), ("e1",), ("e1",), ("e1",), ("e1",)))
    with pytest.raises(OptimizeError):
        Genome(machines=(("e;1",),) + (("e1",),) * 4)


def test_scaler_genes_validate():
    with pytest.raises(OptimizeError):
        ScalerGenes(drop_ratio=0.0)
    with pytest.raises(OptimizeError):
        ScalerGenes(queue_depth=0)
    with pytest.raises(OptimizeError):
        ScalerGenes(max_replicas=0)


# ----------------------------------------------------------------------
# Campaign-layer integration
# ----------------------------------------------------------------------
def test_resolve_placement_decodes_genome_specs():
    spec = Genome.from_placement(baseline_configs()["C2"]).encode()
    placement = resolve_placement(spec)
    assert placement.name == spec
    assert placement.placements == {
        s: list(r) for s, r in zip(
            PIPELINE_ORDER,
            Genome.decode(spec).machines)}


def test_campaign_accepts_genome_specs_and_fails_fast_on_bad():
    spec = Genome.from_placement(baseline_configs()["C1"]).encode()
    campaign = Campaign(name="t", pipelines=("optimize",),
                        placements=(spec,), client_counts=(1,),
                        duration_s=1.0)
    assert campaign.placements == (spec,)
    with pytest.raises(ValueError):
        Campaign(name="t", pipelines=("optimize",),
                 placements=("opt:bogus",), client_counts=(1,),
                 duration_s=1.0)


# ----------------------------------------------------------------------
# Search-space schedulability
# ----------------------------------------------------------------------
def test_schedulability_checks():
    space = SearchSpace(machines=("e1", "e2"),
                        max_replicas_per_service=2)
    ok = Genome(machines=(("e1",), ("e2", "e1"), ("e1",),
                          ("e2",), ("e1",)))
    assert space.is_schedulable(ok)
    too_many = Genome(machines=(("e1", "e1", "e1"),) + (("e1",),) * 4)
    assert not space.is_schedulable(too_many)
    unknown = Genome(machines=(("cloud",),) + (("e1",),) * 4)
    assert not space.is_schedulable(unknown)
    scaled = Genome(machines=ok.machines,
                    scaler=ScalerGenes(machine="cloud"))
    assert not space.is_schedulable(scaled)
    no_scaler_space = SearchSpace(machines=("e1", "e2"), scaler=False)
    assert not no_scaler_space.is_schedulable(
        Genome(machines=ok.machines, scaler=ScalerGenes()))


def test_schedulability_enforces_memory():
    # 4.9 GB fits the single-replica pipeline; doubling sift (1.5 GB)
    # overflows a 5 GB machine.
    space = SearchSpace(machines=("e1",), memory_gb={"e1": 5.0})
    assert space.is_schedulable(
        Genome(machines=tuple(("e1",) for __ in PIPELINE_ORDER)))
    doubled = Genome(machines=(("e1",), ("e1", "e1"), ("e1",),
                               ("e1",), ("e1",)))
    assert not space.is_schedulable(doubled)


# ----------------------------------------------------------------------
# Oracle neutrality and the scaler path
# ----------------------------------------------------------------------
def test_neutral_genome_replays_flow_trace():
    """A scaler-less genome's oracle run is byte-identical to the
    plain scatterpp-flow experiment on the same placement."""
    from repro.experiments.oracle import run_optimize_experiment
    from repro.experiments.runner import run_scatterpp_flow_experiment

    c1 = baseline_configs()["C1"]
    neutral = Genome.from_placement(c1).to_placement()
    flow = run_scatterpp_flow_experiment(
        c1, num_clients=1, duration_s=2.0, seed=0)
    opt = run_optimize_experiment(
        neutral, num_clients=1, duration_s=2.0, seed=0)
    from repro.experiments.store import summarize_result

    assert opt.trace_digest == flow.trace_digest
    assert (summarize_result(opt)["fps"]
            == summarize_result(flow)["fps"])
    assert opt.energy is not None
    assert opt.autoscaler is None


def test_scaler_genome_attaches_autoscaler():
    from repro.experiments.oracle import run_optimize_experiment

    spec = Genome.from_placement(
        baseline_configs()["C1"],
        scaler=ScalerGenes(drop_ratio=0.02, queue_depth=8,
                           max_replicas=2, machine="e1"))
    result = run_optimize_experiment(
        spec.to_placement(), num_clients=2, duration_s=2.0, seed=0)
    assert result.autoscaler is not None
    assert result.autoscaler["genes"]["queue_depth"] == 8
    assert isinstance(result.autoscaler["decisions"], list)
    assert isinstance(result.autoscaler["skipped"], list)


def test_static_runners_accept_genome_placements():
    """The plain non-optimize runners keep working when handed a
    resolved genome placement (it is just a PlacementConfig)."""
    from repro.experiments.runner import run_scatterpp_experiment
    from repro.experiments.store import summarize_result

    placement = resolve_placement(
        Genome.from_placement(baseline_configs()["C1"]).encode())
    result = run_scatterpp_experiment(
        placement, num_clients=1, duration_s=1.0, seed=0)
    assert summarize_result(result)["fps"] > 0.0


# ----------------------------------------------------------------------
# End-to-end tiny search + CLI
# ----------------------------------------------------------------------
def test_tiny_budget_search_produces_valid_report():
    config = OptimizeConfig(seed=3, population=3, generations=1,
                            budget=4, ladder=(1,), duration_s=1.5,
                            machines=("e1",), scaler=False)
    report = run_search(config)
    assert report.front, "front must be non-empty"
    assert report.evaluations <= 4
    for entry in report.front:
        assert is_genome_spec(entry["genome"])
        obj = entry["objectives"]
        assert set(obj) == {"capacity", "p95_ms",
                            "joules_per_frame", "cost_units"}
    for call in report.oracle_calls:
        assert set(call) == {"genome", "clients", "seed",
                             "fingerprint"}
        assert len(call["fingerprint"]) == 32
    round_tripped = json.loads(json.dumps(report.as_dict()))
    assert round_tripped["front"] == report.front
    assert report.best() == report.front[0]
    assert len(report.front_digest()) == 32


def test_optimize_config_validation():
    with pytest.raises(OptimizeError):
        OptimizeConfig(population=1)
    with pytest.raises(OptimizeError):
        OptimizeConfig(generations=-1)
    with pytest.raises(OptimizeError):
        OptimizeConfig(budget=0)


def test_cli_search_smoke(capsys, tmp_path):
    from repro.cli import main

    out_json = tmp_path / "report.json"
    code = main(["optimize", "--budget", "3", "--population", "2",
                 "--clients", "1", "--duration", "1.5",
                 "--machines", "e1", "--json", str(out_json)])
    assert code == 0
    output = capsys.readouterr().out
    assert "front digest:" in output
    saved = json.loads(out_json.read_text())
    assert saved["front"]
    assert saved["evaluations"] <= 3
