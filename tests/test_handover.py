"""Tests for netem schedules (access-network handover emulation)."""

import numpy as np
import pytest

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.net import Address, DatagramSocket, Netem, Network
from repro.net.netem import (
    apply_netem_schedule,
    lte_profile,
    wifi6_profile,
)
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import uniform_config
from repro.scatter.pipeline import ScatterPipeline
from repro.sim import RngRegistry, Simulator


def test_schedule_swaps_profiles_at_times():
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.001)
    first = Netem(delay_s=0.001)
    second = Netem(delay_s=0.020)
    apply_netem_schedule(net, "a", "b",
                         [(0.0, first), (5.0, second)])
    sim.run(until=1.0)
    assert net.link("a", "b").netem is first
    assert net.link("b", "a").netem is first
    sim.run(until=6.0)
    assert net.link("a", "b").netem is second


def test_schedule_validation():
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.001)
    with pytest.raises(ValueError):
        apply_netem_schedule(net, "a", "b", [])
    with pytest.raises(ValueError):
        apply_netem_schedule(net, "a", "b", [(-1.0, None)])


def test_schedule_asymmetric():
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("a", "b", rtt_s=0.001)
    profile = Netem(delay_s=0.010)
    apply_netem_schedule(net, "a", "b", [(0.0, profile)],
                         symmetric=False)
    sim.run(until=0.5)
    assert net.link("a", "b").netem is profile
    assert net.link("b", "a").netem is None


def test_handover_shifts_latency_mid_run():
    """A client on WiFi-6 hands over to LTE at t=15 s: E2E latency
    steps up by roughly the RTT difference (35 ms)."""
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed)
    ScatterPipeline(testbed, orchestrator,
                    uniform_config("E2", "e2")).deploy()
    orchestrator.start()
    apply_netem_schedule(testbed.network, "nuc0", "e1",
                         [(0.0, wifi6_profile()),
                          (15.0, lte_profile())])
    client = ArClient(client_id=0, node="nuc0",
                      network=testbed.network,
                      registry=orchestrator.registry,
                      rng=rng.stream("client.0"))
    client.start(30.0)
    sim.run(until=30.0 + DRAIN_S)

    before = [t - client.stats.sent[n]
              for n, t in client.stats.received.items()
              if t < 14.5]
    after = [t - client.stats.sent[n]
             for n, t in client.stats.received.items()
             if t > 16.0]
    assert before and after
    step_ms = 1000.0 * (np.mean(after) - np.mean(before))
    assert 25.0 <= step_ms <= 50.0
