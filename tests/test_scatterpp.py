"""Integration tests: scAtteR++ (stateless sift + sidecars)."""

import pytest

from repro.experiments.runner import (
    run_ramp_experiment,
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import baseline_configs, uniform_config
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.scatterpp.services import PACKED_WIRE_SIZES


@pytest.fixture(scope="module")
def pp_single():
    return run_scatterpp_experiment(baseline_configs()["C1"],
                                    num_clients=1, duration_s=10.0)


@pytest.fixture(scope="module")
def pp_four():
    return run_scatterpp_experiment(baseline_configs()["C1"],
                                    num_clients=4, duration_s=10.0)


@pytest.fixture(scope="module")
def scatter_four():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=4, duration_s=10.0)


@pytest.fixture(scope="module")
def scatter_single():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=1, duration_s=10.0)


def test_packed_frames_grow_to_480kb():
    """§5: packaging SIFT state grows frames from ≈180 KB to ≈480 KB."""
    assert PACKED_WIRE_SIZES["sift->encoding"] == 480 * 1024


def test_single_client_improvement(pp_single, scatter_single):
    """§5: ≈9% FPS and ≈+17.6% success at one client."""
    assert pp_single.mean_fps() >= scatter_single.mean_fps()
    assert pp_single.success_rate() >= \
        scatter_single.success_rate() + 0.05


def test_multi_client_framerate_multiplier(pp_four, scatter_four):
    """§5: ≈2.5x frame rate with concurrent clients."""
    multiplier = pp_four.mean_fps() / max(0.1, scatter_four.mean_fps())
    assert multiplier >= 2.0


def test_four_clients_maintain_realtime_floor(pp_four):
    """§5: scAtteR++ consistently maintains ≥12 FPS with 4 clients."""
    assert pp_four.mean_fps() >= 12.0


def test_no_fetch_machinery_in_stateless_pipeline(pp_single):
    sift = pp_single.pipeline.instances("sift")[0]
    assert not hasattr(sift, "fetch_hits")
    matching = pp_single.pipeline.instances("matching")[0]
    assert not hasattr(matching, "fetch_timeouts")


def test_sidecars_eliminate_busy_drops(pp_four):
    """Drops move from the UDP socket into the sidecar's threshold."""
    drops = pp_four.drop_counts()
    assert all(count == 0 for count in drops.values())
    stale = sum(
        i.sidecar.stats.dropped_stale
        for service in ("sift", "encoding", "lsh", "matching")
        for i in pp_four.pipeline.instances(service))
    assert stale > 0


def test_sidecar_latency_includes_queueing(pp_four, pp_single):
    """§5: scAtteR++ incurs slightly higher per-service latency (the
    sidecar's queueing time is part of what it reports)."""
    busy = pp_four.service_latency_ms()["sift"]
    idle = pp_single.service_latency_ms()["sift"]
    assert busy > idle


def test_analytics_present_and_sampled(pp_four):
    analytics = pp_four.analytics
    assert analytics is not None
    assert analytics.services() == ["encoding", "lsh", "matching",
                                    "primary", "sift"]
    assert analytics.mean("primary", "ingress_fps") > 50.0


def test_threshold_controls_drops():
    strict = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=10.0,
        threshold_s=0.020)
    lax = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=10.0,
        threshold_s=0.500)

    def stale_drops(result):
        return sum(i.sidecar.stats.dropped_stale
                   for service in ("sift", "encoding", "lsh", "matching")
                   for i in result.pipeline.instances(service))

    assert stale_drops(strict) > stale_drops(lax)


def test_threshold_validation():
    with pytest.raises(ValueError):
        scatterpp_pipeline_kwargs(threshold_s=0.0)


def test_ablation_stateless_only_beats_scatter(scatter_four):
    stateless_only = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=10.0,
        with_sidecars=False)
    assert stateless_only.mean_fps() > scatter_four.mean_fps()


def test_ablation_no_components_reduces_to_scatter(scatter_four):
    plain = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=4, duration_s=10.0,
        stateless_sift=False, with_sidecars=False)
    assert plain.mean_fps() == pytest.approx(scatter_four.mean_fps(),
                                             rel=0.25)
    # The fetch machinery is back.
    matching = plain.pipeline.instances("matching")[0]
    assert hasattr(matching, "fetch_timeouts")


def test_ramp_experiment_staged_load():
    result = run_ramp_experiment(uniform_config("E1", "e1"),
                                 max_clients=3, stage_s=5.0)
    assert result.duration_s == pytest.approx(15.0)
    # Client 0 streamed the whole run; client 2 only the last stage.
    assert result.clients[0].frames_sent > \
        result.clients[2].frames_sent * 2
    # Ingress at primary steps up stage by stage.
    ingress = result.analytics.series("primary", "ingress_fps")
    first_stage = [v for t, v in ingress if t <= 5.0]
    last_stage = [v for t, v in ingress if t > 10.0]
    assert max(last_stage) > max(first_stage) * 2


def test_ramp_validation():
    with pytest.raises(ValueError):
        run_ramp_experiment(uniform_config("E1", "e1"), max_clients=0)
    with pytest.raises(ValueError):
        run_ramp_experiment(uniform_config("E1", "e1"), max_clients=1,
                            stage_s=0.0)


def test_admission_rejections_surface_in_analytics():
    """Shed load is visible as reject_ratio, not hidden in drop_ratio.

    A tight per-client admission bucket at every sidecar rejects a
    chunk of the 30 FPS offered load; the analytics rows must report
    it in the dedicated ``reject_ratio`` column while ``drop_ratio``
    keeps its queue-exit meaning.
    """
    from repro.flow import default_flow_config

    flow = default_flow_config().with_overrides(
        admission="token-bucket", admission_rate_fps=10.0,
        admission_burst=2, batch_max=1, credits=False,
        client_pacing=False)
    result = run_scatterpp_experiment(
        baseline_configs()["C1"], num_clients=2, duration_s=8.0,
        flow=flow)
    primary = result.pipeline.instances("primary")[0]
    stats = primary.sidecar.stats
    assert stats.rejected > 0
    assert 0.0 < stats.reject_ratio() < 1.0
    # Rejected frames never entered the queue, so they must not count
    # as queue exits.
    assert stats.reject_ratio() > stats.drop_ratio()
    assert result.analytics.mean("primary", "reject_ratio") > 0.0
    # The rows still expose credits (zero here: credits are off, the
    # column reports the sidecar's instantaneous headroom regardless).
    rows = [row for row in result.analytics.rows
            if row.service == "primary"]
    assert rows and all(row.credits >= 0 for row in rows)


def test_analytics_reject_ratio_zero_without_flow(pp_four):
    assert pp_four.analytics.mean("primary", "reject_ratio") == 0.0
    assert all(row.reject_ratio == 0.0
               for row in pp_four.analytics.rows)
