"""Unit tests for the network topology, sockets and registry."""

import numpy as np
import pytest

from repro.net import (
    Address,
    DatagramSocket,
    Netem,
    Network,
    NetworkError,
    ServiceRegistry,
)
from repro.sim import Simulator


def make_network(loss=0.0):
    sim = Simulator()
    net = Network(sim, rng=np.random.default_rng(0))
    net.add_link("client", "e1", rtt_s=0.001, loss=loss)
    net.add_link("e1", "e2", rtt_s=0.003)
    net.add_link("e1", "cloud", rtt_s=0.015)
    return sim, net


def test_route_multi_hop():
    __, net = make_network()
    assert net.route("client", "e2") == ["client", "e1", "e2"]


def test_route_same_node():
    __, net = make_network()
    assert net.route("e1", "e1") == ["e1"]


def test_no_route_raises():
    sim = Simulator()
    net = Network(sim)
    net.add_node("island")
    net.add_node("mainland")
    with pytest.raises(NetworkError):
        net.route("island", "mainland")


def test_path_rtt_composes():
    __, net = make_network()
    assert net.path_rtt("client", "e2") == pytest.approx(0.004)
    assert net.path_rtt("client", "cloud") == pytest.approx(0.016)


def test_datagram_delivery_end_to_end():
    sim, net = make_network()
    dst = Address("e2", 5000)
    src = Address("client", 4000)
    server = DatagramSocket(net, dst)
    client = DatagramSocket(net, src)
    got = []

    def receiver():
        datagram = yield server.recv()
        got.append((sim.now, datagram.payload, datagram.src))

    sim.spawn(receiver())
    assert client.sendto(dst, "hello", size_bytes=100)
    sim.run()
    assert len(got) == 1
    when, payload, from_addr = got[0]
    assert payload == "hello"
    assert from_addr == src
    assert when >= 0.002  # one-way client->e2 = 0.5 + 1.5 ms


def test_local_delivery_same_node():
    sim, net = make_network()
    a = Address("e1", 1)
    b = Address("e1", 2)
    sock_a = DatagramSocket(net, a)
    sock_b = DatagramSocket(net, b)
    got = []

    def receiver():
        datagram = yield sock_b.recv()
        got.append((sim.now, datagram.payload))

    sim.spawn(receiver())
    sock_a.sendto(b, "local", size_bytes=10)
    sim.run()
    assert got == [(0.0, "local")]


def test_lossy_link_drops_datagrams():
    sim, net = make_network(loss=1.0)
    server = DatagramSocket(net, Address("e1", 5000))
    client = DatagramSocket(net, Address("client", 4000))
    assert not client.sendto(server.address, "x", size_bytes=10)
    sim.run()
    assert server.pending == 0
    assert net.stats_lost == 1


def test_unbound_address_eats_packet():
    sim, net = make_network()
    client = DatagramSocket(net, Address("client", 4000))
    assert client.sendto(Address("e1", 9999), "void", size_bytes=10)
    sim.run()  # must not raise


def test_double_bind_rejected():
    __, net = make_network()
    DatagramSocket(net, Address("e1", 5000))
    with pytest.raises(NetworkError):
        DatagramSocket(net, Address("e1", 5000))


def test_close_unbinds():
    sim, net = make_network()
    sock = DatagramSocket(net, Address("e1", 5000))
    sock.close()
    DatagramSocket(net, Address("e1", 5000))  # rebinding now fine


def test_recv_queue_capacity_overflow():
    sim, net = make_network()
    server = DatagramSocket(net, Address("e1", 5000), recv_capacity=2)
    client = DatagramSocket(net, Address("client", 4000))
    for __ in range(5):
        client.sendto(server.address, "x", size_bytes=10)
    sim.run()
    assert server.pending == 2
    assert server.rx_dropped_full == 3
    assert server.rx_count == 5


def test_set_netem_changes_behaviour():
    sim, net = make_network()
    net.set_netem("client", "e1", Netem(loss=1.0))
    client = DatagramSocket(net, Address("client", 4000))
    assert not client.sendto(Address("e1", 5000), "x", size_bytes=10)
    net.set_netem("client", "e1", None)
    assert client.sendto(Address("e1", 5000), "x", size_bytes=10)


def test_registry_round_robin():
    registry = ServiceRegistry()
    a1 = Address("e1", 1)
    a2 = Address("e2", 1)
    registry.register("sift", a1)
    registry.register("sift", a2)
    picks = [registry.resolve("sift") for __ in range(4)]
    assert picks == [a1, a2, a1, a2]


def test_registry_sticky_affinity():
    registry = ServiceRegistry()
    a1 = Address("e1", 1)
    a2 = Address("e2", 1)
    registry.register("sift", a1)
    registry.register("sift", a2)
    assert registry.resolve_sticky("sift", 4) == a1
    assert registry.resolve_sticky("sift", 7) == a2
    # Affinity is stable across calls.
    assert registry.resolve_sticky("sift", 4) == a1


def test_registry_unknown_service():
    registry = ServiceRegistry()
    with pytest.raises(LookupError):
        registry.resolve("ghost")
    with pytest.raises(LookupError):
        registry.resolve_sticky("ghost", 0)


def test_registry_register_idempotent_and_deregister():
    registry = ServiceRegistry()
    addr = Address("e1", 1)
    registry.register("svc", addr)
    registry.register("svc", addr)
    assert registry.instances("svc") == [addr]
    registry.deregister("svc", addr)
    assert registry.instances("svc") == []


def test_registry_custom_balancer():
    def always_last(service, instances):
        return instances[-1]

    registry = ServiceRegistry(balancer=always_last)
    registry.register("svc", Address("e1", 1))
    registry.register("svc", Address("e2", 1))
    assert registry.resolve("svc") == Address("e2", 1)
    assert registry.resolve("svc") == Address("e2", 1)
