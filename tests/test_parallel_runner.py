"""Failure paths of the sharded campaign runner.

The contract under test: a cell that raises, kills its worker, or is
submitted twice must be recorded as a failed cell — never a dead
campaign — and every other cell must still produce results.

The fake runners below return ready-made summary dicts (a capability
``run_cell_task`` supports precisely for this), so these tests cost
milliseconds of simulated work per task.  They rely on the ``fork``
start method (Linux): monkeypatched ``RUNNERS`` entries are inherited
by pool workers.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.experiments import campaign as campaign_mod
from repro.experiments.campaign import Campaign, render_report, run_campaign
from repro.experiments import parallel as parallel_mod
from repro.experiments.parallel import (
    CellTask,
    plan_tasks,
    run_tasks,
    shard_tasks,
    shutdown_pool,
    warm_pool,
)

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fake-runner injection into pool workers requires fork")


@pytest.fixture(autouse=True)
def fresh_pool():
    """Drop the persistent pool around every test.

    Pool workers freeze ``RUNNERS`` at fork time, so a pool warmed
    before a monkeypatch would run the *real* runners — and a pool
    forked with this file's fakes would leak them into later tests.
    """
    shutdown_pool()
    yield
    shutdown_pool()


def fake_runner(placement, *, num_clients, duration_s, seed):
    return {"fps": 30.0 - num_clients, "success_rate": 1.0,
            "e2e_ms": 40.0 + seed, "jitter_ms": 1.0, "qoe_mos": 4.0,
            "trace_digest":
                f"digest-{placement.name}-{num_clients}c-s{seed}"}


def raising_runner(placement, *, num_clients, duration_s, seed):
    if placement.name == "C2":
        raise RuntimeError(f"calibration exploded on seed {seed}")
    return fake_runner(placement, num_clients=num_clients,
                       duration_s=duration_s, seed=seed)


def killer_runner(placement, *, num_clients, duration_s, seed):
    if placement.name == "C2":
        os.kill(os.getpid(), signal.SIGKILL)  # worker dies mid-cell
    return fake_runner(placement, num_clients=num_clients,
                       duration_s=duration_s, seed=seed)


def tiny_campaign(**overrides):
    defaults = dict(name="par", pipelines=("scatter",),
                    placements=("C1", "C2"), client_counts=(1,),
                    duration_s=1.0, seeds=(0, 1))
    defaults.update(overrides)
    return Campaign(**defaults)


@pytest.fixture
def fake_pipeline(monkeypatch):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter", fake_runner)


# ----------------------------------------------------------------------
# Plan / shard determinism
# ----------------------------------------------------------------------
def test_plan_tasks_canonical_order():
    campaign = tiny_campaign()
    tasks = plan_tasks(campaign)
    assert [str(t) for t in tasks] == [
        "scatter/C1/1c/seed0", "scatter/C1/1c/seed1",
        "scatter/C2/1c/seed0", "scatter/C2/1c/seed1"]
    assert plan_tasks(campaign) == tasks  # stable


def test_shard_tasks_partitions_deterministically():
    tasks = plan_tasks(tiny_campaign(client_counts=(1, 2, 3)))
    shards = shard_tasks(tasks, 4)
    assert len(shards) == 4
    flattened = [task for shard in shards for task in shard]
    assert sorted(flattened, key=str) == sorted(tasks, key=str)
    assert shards == shard_tasks(tasks, 4)  # timing-independent
    assert shards[0] == tasks[0::4]
    with pytest.raises(ValueError):
        shard_tasks(tasks, 0)


def test_run_tasks_rejects_negative_workers():
    with pytest.raises(ValueError):
        run_tasks([], workers=-1)


# ----------------------------------------------------------------------
# Success path (fake cells, 2 workers)
# ----------------------------------------------------------------------
def test_parallel_campaign_with_fake_cells(fake_pipeline, tmp_path):
    lines = []
    report = run_campaign(tiny_campaign(), workers=2,
                          progress=lines.append,
                          store_dir=str(tmp_path / "store"))
    assert not report.failures
    assert len(report.cells) == 2
    assert len(lines) == 2  # one progress line per cell
    assert report.digests[("scatter", "C1", 1)] == {
        0: "digest-C1-1c-s0", 1: "digest-C1-1c-s1"}
    stored = json.loads(
        (tmp_path / "store" / "par__scatter__C1__1c.json").read_text())
    assert stored["trace_digests"] == {"0": "digest-C1-1c-s0",
                                      "1": "digest-C1-1c-s1"}


# ----------------------------------------------------------------------
# Worker raising mid-cell
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 2])
def test_raising_cell_marked_failed_campaign_continues(
        monkeypatch, tmp_path, workers):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        raising_runner)
    report = run_campaign(tiny_campaign(), workers=workers,
                          store_dir=str(tmp_path / "store"))
    # The healthy cell still produced metrics...
    assert ("scatter", "C1", 1) in report.cells
    # ...and the raising one is a recorded failure, not a crash.
    failures = report.failures[("scatter", "C2", 1)]
    assert len(failures) == 2  # both seeds raised
    assert all(f.kind == "exception" for f in failures)
    assert "calibration exploded" in failures[0].error
    assert "RuntimeError" in failures[0].error
    stored = json.loads(
        (tmp_path / "store" / "par__scatter__C2__1c.json").read_text())
    assert stored["failed"] is True
    assert stored["failures"][0]["kind"] == "exception"


def test_failure_traceback_survives_process_boundary(monkeypatch):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        raising_runner)
    report = run_campaign(tiny_campaign(placements=("C2",),
                                        seeds=(0,)), workers=1)
    failure = report.failures[("scatter", "C2", 1)][0]
    assert "raising_runner" in failure.traceback


# ----------------------------------------------------------------------
# Worker killed mid-cell (broken pool + quarantine)
# ----------------------------------------------------------------------
def test_killed_worker_marked_lost_others_survive(monkeypatch):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        killer_runner)
    # Killer cell first in plan order so the pool breaks while the
    # healthy cell may still be in flight (quarantine path).
    report = run_campaign(tiny_campaign(placements=("C2", "C1"),
                                        seeds=(0,)), workers=2)
    failures = report.failures[("scatter", "C2", 1)]
    assert [f.kind for f in failures] == ["worker-lost"]
    assert ("scatter", "C1", 1) in report.cells
    assert report.cells[("scatter", "C1", 1)]["fps"].mean == 29.0


# ----------------------------------------------------------------------
# Batched submission on the warm pool
# ----------------------------------------------------------------------
def test_batched_submission_preserves_plan_order(fake_pipeline):
    """Round-robin batching must not reorder outcomes: position i of
    the result always belongs to task i of the plan."""
    campaign = tiny_campaign(placements=("C2", "C1"),
                             client_counts=(1, 2, 3), seeds=(0, 1))
    tasks = plan_tasks(campaign)
    warm_pool(2)
    outcomes = run_tasks(tasks, workers=2)
    assert [outcome.task for outcome in outcomes] == tasks
    assert all(outcome.ok for outcome in outcomes)
    digests = [outcome.summary["trace_digest"] for outcome in outcomes]
    assert digests == [
        f"digest-{t.placement}-{t.clients}c-s{t.seed}" for t in tasks]


def test_sigkill_in_batch_quarantines_only_the_lethal_tasks(
        monkeypatch):
    """A SIGKILL takes down its whole batch, but quarantine retries the
    casualties one at a time: healthy batchmates still produce results
    and only the lethal tasks end up ``worker-lost``."""
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        killer_runner)
    campaign = tiny_campaign(placements=("C2", "C1"),
                             client_counts=(1, 2, 3), seeds=(0,))
    tasks = plan_tasks(campaign)
    warm_pool(2)  # 6 tasks across 4 batches: killers share batches
    outcomes = run_tasks(tasks, workers=2)
    assert [outcome.task for outcome in outcomes] == tasks
    for outcome in outcomes:
        if outcome.task.placement == "C2":
            assert not outcome.ok
            assert outcome.failure.kind == "worker-lost"
            assert outcome.quarantined
        else:
            assert outcome.ok, outcome.failure
            assert outcome.summary["fps"] == 30.0 - outcome.task.clients


def test_pool_reuse_across_run_tasks_calls_leaks_no_state(
        fake_pipeline):
    """Consecutive ``run_tasks`` calls share one warm pool and stay
    independent: identical results, no carried-over outcomes."""
    warm_pool(2)
    tasks = plan_tasks(tiny_campaign())
    first = run_tasks(tasks, workers=2)
    pool = parallel_mod._POOL
    assert pool is not None
    second = run_tasks(tasks, workers=2)
    assert parallel_mod._POOL is pool  # reused, not respawned
    assert len(first) == len(second) == len(tasks)
    assert [o.summary for o in first] == [o.summary for o in second]
    assert all(o.ok and not o.quarantined and not o.cached
               for o in first + second)


# ----------------------------------------------------------------------
# Duplicate submission
# ----------------------------------------------------------------------
def test_duplicate_submission_refused(fake_pipeline):
    task = CellTask(pipeline="scatter", placement="C1", clients=1,
                    seed=0, duration_s=1.0)
    other = CellTask(pipeline="scatter", placement="C1", clients=1,
                     seed=1, duration_s=1.0)
    outcomes = run_tasks([task, task, other], workers=0)
    assert len(outcomes) == 3
    assert outcomes[0].ok
    assert not outcomes[1].ok
    assert outcomes[1].failure.kind == "duplicate"
    assert "plan index 0" in outcomes[1].failure.error
    assert outcomes[2].ok


def test_duplicate_refused_in_parallel_mode_too(fake_pipeline):
    task = CellTask(pipeline="scatter", placement="C1", clients=1,
                    seed=0, duration_s=1.0)
    outcomes = run_tasks([task, task], workers=2)
    assert [o.ok for o in outcomes] == [True, False]
    assert outcomes[1].failure.kind == "duplicate"


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_render_report_lists_failed_cells(monkeypatch):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        raising_runner)
    report = run_campaign(tiny_campaign(), workers=0)
    text = render_report(report)
    assert "## failed cells" in text
    assert "exception" in text
    assert "calibration exploded" in text


def test_task_progress_reports_every_task(fake_pipeline):
    lines = []
    run_campaign(tiny_campaign(), workers=2, task_progress=lines.append)
    assert len(lines) == 4
    assert any(line.startswith("[4/4] ") for line in lines)
    assert all(": ok" in line for line in lines)
