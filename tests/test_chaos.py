"""Chaos tests: failures injected under live load.

The orchestrator must keep the deployment converging through crashes
(§3.2: Oakestra automatically re-deploys services upon failures), and
the pipelines must degrade gracefully rather than wedge.
"""

import pytest

from repro.cluster.container import ContainerState
from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import PIPELINE_ORDER, baseline_configs
from repro.scatter.pipeline import ScatterPipeline
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.sim import RngRegistry, Simulator


def run_with_chaos(*, scatterpp: bool, victims, kill_times,
                   duration_s=30.0, num_clients=2):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=num_clients)
    orchestrator = Orchestrator(testbed, redeploy_delay_s=1.0)
    kwargs = scatterpp_pipeline_kwargs() if scatterpp else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"], **kwargs)
    pipeline.deploy()
    orchestrator.start()
    clients = [ArClient(client_id=i, node=node,
                        network=testbed.network,
                        registry=orchestrator.registry,
                        rng=rng.stream(f"client.{i}"))
               for i, node in enumerate(testbed.client_nodes)]
    for client in clients:
        client.start(duration_s)

    def chaos():
        for when, service in sorted(zip(kill_times, victims)):
            yield sim.timeout(max(0.0, when - sim.now))
            instances = orchestrator.instances(service)
            if instances:
                orchestrator.fail_instance(instances[0])

    sim.spawn(chaos())
    sim.run(until=duration_s + DRAIN_S)
    return sim, orchestrator, clients


def test_single_crash_recovers():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=["sift"], kill_times=[10.0])
    assert orchestrator.redeploy_count == 1
    # The replacement runs and is registered.
    sift = orchestrator.instances("sift")
    assert len(sift) == 1
    assert sift[0].container.state is ContainerState.RUNNING
    assert orchestrator.registry.instances("sift") == \
        [sift[0].address]
    # Clients kept receiving after recovery.
    for client in clients:
        late = [t for t in client.stats.received.values() if t > 15.0]
        assert late, "no frames delivered after the recovery window"


def test_repeated_crashes_all_services():
    """Kill every service once, in pipeline order, under load."""
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=list(PIPELINE_ORDER),
        kill_times=[4.0, 8.0, 12.0, 16.0, 20.0])
    assert orchestrator.redeploy_count == 5
    for service in PIPELINE_ORDER:
        instances = orchestrator.instances(service)
        assert len(instances) == 1
        assert instances[0].container.state is ContainerState.RUNNING
    total_received = sum(c.stats.frames_received for c in clients)
    assert total_received > 0


def test_scatterpp_crash_recovers_with_sidecar():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=True, victims=["encoding"], kill_times=[10.0])
    assert orchestrator.redeploy_count == 1
    encoding = orchestrator.instances("encoding")[0]
    # The replacement came back with a working sidecar.
    assert hasattr(encoding, "sidecar")
    assert encoding.sidecar.stats.enqueued > 0
    for client in clients:
        late = [t for t in client.stats.received.values() if t > 15.0]
        assert late


def test_crash_frees_machine_memory():
    sim, orchestrator, __ = run_with_chaos(
        scatterpp=False, victims=["matching"], kill_times=[10.0])
    # Exactly one replica per service exists; books balance (no
    # leaked memory from the failed container).
    machine = orchestrator.testbed.machine("e1")
    expected = sum(
        instance.container.memory_bytes()
        for service in PIPELINE_ORDER
        for instance in orchestrator.instances(service))
    assert machine.memory.in_use_bytes == pytest.approx(expected)


def test_back_to_back_crashes_of_same_service():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=["sift", "sift", "sift"],
        kill_times=[5.0, 10.0, 15.0])
    assert orchestrator.redeploy_count == 3
    assert len(orchestrator.instances("sift")) == 1
    late = [t for c in clients
            for t in c.stats.received.values() if t > 20.0]
    assert late
