"""Chaos tests: failures injected under live load.

The orchestrator must keep the deployment converging through crashes
(§3.2: Oakestra automatically re-deploys services upon failures), and
the pipelines must degrade gracefully rather than wedge.
"""

import pytest

from repro.cluster.container import ContainerState
from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import PIPELINE_ORDER, baseline_configs
from repro.scatter.pipeline import ScatterPipeline
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.sim import RngRegistry, Simulator


def run_with_chaos(*, scatterpp: bool, victims, kill_times,
                   duration_s=30.0, num_clients=2):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=num_clients)
    orchestrator = Orchestrator(testbed, redeploy_delay_s=1.0)
    kwargs = scatterpp_pipeline_kwargs() if scatterpp else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"], **kwargs)
    pipeline.deploy()
    orchestrator.start()
    clients = [ArClient(client_id=i, node=node,
                        network=testbed.network,
                        registry=orchestrator.registry,
                        rng=rng.stream(f"client.{i}"))
               for i, node in enumerate(testbed.client_nodes)]
    for client in clients:
        client.start(duration_s)

    def chaos():
        for when, service in sorted(zip(kill_times, victims)):
            yield sim.timeout(max(0.0, when - sim.now))
            instances = orchestrator.instances(service)
            if instances:
                orchestrator.fail_instance(instances[0])

    sim.spawn(chaos())
    sim.run(until=duration_s + DRAIN_S)
    return sim, orchestrator, clients


def test_single_crash_recovers():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=["sift"], kill_times=[10.0])
    assert orchestrator.redeploy_count == 1
    # The replacement runs and is registered.
    sift = orchestrator.instances("sift")
    assert len(sift) == 1
    assert sift[0].container.state is ContainerState.RUNNING
    assert orchestrator.registry.instances("sift") == \
        [sift[0].address]
    # Clients kept receiving after recovery.
    for client in clients:
        late = [t for t in client.stats.received.values() if t > 15.0]
        assert late, "no frames delivered after the recovery window"


def test_repeated_crashes_all_services():
    """Kill every service once, in pipeline order, under load."""
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=list(PIPELINE_ORDER),
        kill_times=[4.0, 8.0, 12.0, 16.0, 20.0])
    assert orchestrator.redeploy_count == 5
    for service in PIPELINE_ORDER:
        instances = orchestrator.instances(service)
        assert len(instances) == 1
        assert instances[0].container.state is ContainerState.RUNNING
    total_received = sum(c.stats.frames_received for c in clients)
    assert total_received > 0


def test_scatterpp_crash_recovers_with_sidecar():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=True, victims=["encoding"], kill_times=[10.0])
    assert orchestrator.redeploy_count == 1
    encoding = orchestrator.instances("encoding")[0]
    # The replacement came back with a working sidecar.
    assert hasattr(encoding, "sidecar")
    assert encoding.sidecar.stats.enqueued > 0
    for client in clients:
        late = [t for t in client.stats.received.values() if t > 15.0]
        assert late


def test_crash_frees_machine_memory():
    sim, orchestrator, __ = run_with_chaos(
        scatterpp=False, victims=["matching"], kill_times=[10.0])
    # Exactly one replica per service exists; books balance (no
    # leaked memory from the failed container).
    machine = orchestrator.testbed.machine("e1")
    expected = sum(
        instance.container.memory_bytes()
        for service in PIPELINE_ORDER
        for instance in orchestrator.instances(service))
    assert machine.memory.in_use_bytes == pytest.approx(expected)


def test_back_to_back_crashes_of_same_service():
    __, orchestrator, clients = run_with_chaos(
        scatterpp=False, victims=["sift", "sift", "sift"],
        kill_times=[5.0, 10.0, 15.0])
    assert orchestrator.redeploy_count == 3
    assert len(orchestrator.instances("sift")) == 1
    late = [t for c in clients
            for t in c.stats.received.values() if t > 20.0]
    assert late


# ----------------------------------------------------------------------
# Heartbeat-discovered failures (no control-plane telepathy)
# ----------------------------------------------------------------------
from repro.chaos import (  # noqa: E402
    FaultPlan,
    GrayFailure,
    InstanceCrash,
    NetworkPartition,
    NodeFailure,
)
from repro.chaos.injector import FaultInjector  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    run_resilience_experiment,
)
from repro.orchestra.health import (  # noqa: E402
    FailureDetector,
    HealthState,
)
from repro.scatter.resilience import ResilienceConfig  # noqa: E402


def run_with_detector(*, plan, config_name="C2", scatterpp=False,
                      duration_s=20.0, num_clients=1,
                      detector_kwargs=None, resilience=None):
    """Manual twin of ``run_resilience_experiment`` that returns the
    live detector/injector objects for assertions."""
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=num_clients)
    orchestrator = Orchestrator(testbed)
    kwargs = scatterpp_pipeline_kwargs() if scatterpp else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()[config_name], **kwargs)
    pipeline.deploy()
    orchestrator.start(watchdog=False)
    detector = FailureDetector(orchestrator, **(detector_kwargs or {}))
    detector.start()
    injector = FaultInjector(orchestrator, plan)
    injector.start()
    clients = [ArClient(client_id=i, node=node,
                        network=testbed.network,
                        registry=orchestrator.registry,
                        resilience=resilience,
                        rng=rng.stream(f"client.{i}"))
               for i, node in enumerate(testbed.client_nodes)]
    for client in clients:
        client.start(duration_s)
    sim.run(until=duration_s + DRAIN_S)
    return sim, orchestrator, detector, injector, clients


def test_heartbeat_detects_crash_and_redeploys():
    """A crash nobody signals is found by probes and healed."""
    crash_at = 8.0
    sim, orchestrator, detector, __, clients = run_with_detector(
        plan=FaultPlan([InstanceCrash(at_s=crash_at, service="sift")]))
    # The watchdog is off: the only path to a redeploy is detection.
    assert orchestrator.redeploy_count == 1
    states = [e.state for e in detector.events_for("sift")]
    assert HealthState.SUSPECT in states
    assert HealthState.DEAD in states
    dead = [e for e in detector.events_for("sift")
            if e.state is HealthState.DEAD][0]
    # Detected within the dead timeout plus a probe interval of slack.
    assert crash_at + detector.dead_timeout_s <= dead.timestamp_s \
        <= crash_at + detector.dead_timeout_s + 2 * detector.interval_s
    redeploy_t, service = orchestrator.redeploy_events[0]
    assert service == "sift"
    assert redeploy_t >= dead.timestamp_s
    # The replacement is live, routed, and serving clients again.
    sift = orchestrator.instances("sift")
    assert len(sift) == 1
    assert sift[0].container.state is ContainerState.RUNNING
    assert orchestrator.registry.instances("sift") == [sift[0].address]
    late = [t for c in clients
            for t in c.stats.received.values()
            if t > redeploy_t + 2.0]
    assert late, "no frames delivered after heartbeat-driven recovery"


@pytest.mark.parametrize("scatterpp", [False, True])
def test_partition_then_heal_recovers_routing(scatterpp):
    """A short partition suspends routing; healing restores it."""
    part_start, part_len = 8.0, 2.0
    plan = FaultPlan([NetworkPartition(
        at_s=part_start, duration_s=part_len,
        group_a=("e1",), group_b=("e2",))])
    # dead_timeout longer than the partition: instances must come back
    # via SUSPECT -> HEALTHY, never via redeploy.
    sim, orchestrator, detector, injector, clients = run_with_detector(
        plan=plan, scatterpp=scatterpp,
        detector_kwargs={"suspect_timeout_s": 0.75,
                         "dead_timeout_s": 10.0})
    assert orchestrator.redeploy_count == 0
    suspects = [e for e in detector.events
                if e.state is HealthState.SUSPECT]
    recoveries = [e for e in detector.events
                  if e.state is HealthState.HEALTHY]
    assert suspects, "partition never suspected anyone"
    assert recoveries, "nobody recovered after the heal"
    assert all(part_start <= e.timestamp_s for e in suspects)
    heal_t = part_start + part_len
    assert all(e.timestamp_s >= heal_t for e in recoveries)
    # Every instance is HEALTHY and routed again at the end.
    for service in PIPELINE_ORDER:
        instance = orchestrator.instances(service)[0]
        assert detector.state_of(instance.address) is \
            HealthState.HEALTHY
        assert orchestrator.registry.instances(service) == \
            [instance.address]
    window = injector.windows[0]
    assert window.ended_s == pytest.approx(heal_t)
    late = [t for c in clients
            for t in c.stats.received.values() if t > heal_t + 2.0]
    assert late, "no frames delivered after the partition healed"


def test_gray_failure_invisible_to_detector_visible_to_breaker():
    """A silent slowdown never trips heartbeats, only the breaker."""
    plan = FaultPlan([GrayFailure(at_s=6.0, duration_s=6.0,
                                  service="matching", slowdown=25.0)])
    resilience = ResilienceConfig(request_timeout_s=0.2)
    sim, orchestrator, detector, __, clients = run_with_detector(
        plan=plan, duration_s=16.0, resilience=resilience)
    # The replica keeps acking: zero detector transitions, no redeploy.
    assert detector.events == []
    assert orchestrator.redeploy_count == 0
    client = clients[0]
    assert client.breaker.trips >= 1
    assert client.stats.frames_degraded > 0
    # Slowdown is restored afterwards: late frames flow again.
    late = [t for t in client.stats.received.values() if t > 13.0]
    assert late


def test_node_failure_blocks_then_retries_redeploy():
    """A pinned node going down stalls healing until it rejoins."""
    fail_at, down_for = 5.0, 3.0
    plan = FaultPlan([NodeFailure(at_s=fail_at, node="e2",
                                  duration_s=down_for)])
    sim, orchestrator, detector, __, __ = run_with_detector(
        plan=plan, duration_s=20.0)
    # All five pinned services eventually came back on e2...
    assert orchestrator.redeploy_count == len(PIPELINE_ORDER)
    for service in PIPELINE_ORDER:
        instances = orchestrator.instances(service)
        assert len(instances) == 1
        assert instances[0].address.node == "e2"
        assert instances[0].container.state is ContainerState.RUNNING
    # ...but only after the node rejoined: no redeploy can precede it.
    rejoin_t = fail_at + down_for
    assert all(t >= rejoin_t for t, __ in orchestrator.redeploy_events)


def test_fault_on_empty_service_is_skipped_not_raised():
    """A fault racing a migration/handover/crash that emptied the
    service must log a skipped window and move on — never raise
    ChaosError, never crash a ghost instance."""
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed)
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"])
    pipeline.deploy()
    orchestrator.start(watchdog=False)
    plan = FaultPlan([
        InstanceCrash(at_s=1.0, service="sift"),
        GrayFailure(at_s=2.0, duration_s=1.0, service="sift",
                    slowdown=10.0),
    ])
    injector = FaultInjector(orchestrator, plan)
    injector.start()
    # Empty the service before either fault lands (no watchdog, no
    # detector: nothing redeploys it).
    orchestrator.instances("sift")[0].crash()
    sim.run(until=4.0)

    assert len(injector.windows) == 2
    for window in injector.windows:
        assert window.detail == "skipped: no live replica of 'sift'"
        assert window.ended_s == window.started_s


def test_fault_prefers_registered_replica_mid_drain():
    """With one replica deregistered (draining out of a migration or
    handover) and one registered, the crash lands on the replica still
    carrying traffic."""
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed)
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"])
    pipeline.deploy()
    orchestrator.start(watchdog=False)
    draining = orchestrator.instances("sift")[0]
    serving = orchestrator.scale_up("sift", machine="e2")
    orchestrator.registry.deregister("sift", draining.address)

    injector = FaultInjector(orchestrator,
                             FaultPlan([InstanceCrash(at_s=1.0,
                                                      service="sift")]))
    injector.start()
    sim.run(until=2.0)

    assert not serving.is_running()
    assert draining.is_running()
    assert injector.windows[0].detail == str(serving.address)


def test_resilience_experiment_deterministic():
    """Same seed, same plan -> bit-identical resilience metrics."""
    plan = [InstanceCrash(at_s=5.0, service="sift"),
            GrayFailure(at_s=10.0, duration_s=2.0, service="matching",
                        slowdown=25.0)]
    results = [run_resilience_experiment(
        baseline_configs()["C2"], num_clients=1,
        plan=FaultPlan(list(plan)), duration_s=15.0, seed=7)
        for __ in range(2)]
    a, b = (r.resilience for r in results)
    assert a.availability() == b.availability()
    assert a.success_rate() == b.success_rate()
    assert a.mean_mttr_s() == b.mean_mttr_s()
    assert a.frames_sent == b.frames_sent
    assert a.frames_degraded == b.frames_degraded
    assert a.breaker_timeline == b.breaker_timeline
    assert a.health_events == b.health_events
    # And the numbers are non-trivial: faults really happened.
    assert a.mean_mttr_s() > 0
    assert a.frames_degraded > 0
    assert a.redeploy_count >= 1
    assert 0.0 < a.availability() <= 1.0
