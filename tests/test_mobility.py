"""Tests for client mobility and stateful session handover.

Covers the trajectory model (deterministic, seed-derived, validated),
the session directory routing contract, the handover protocol's happy
path (state moves, nothing lost, the client cuts over to the new
epoch), the naive kill-and-reconnect baseline (state dies, counted),
supersession of in-flight handovers, and mid-handover chaos (source
crash → forward recovery).  Conservation is audited after every run:
see ``tests/test_handover_conservation.py`` for the randomized sweep.
"""

import numpy as np
import pytest

from repro.chaos import FaultPlan, InstanceCrash
from repro.experiments.runner import (
    DRAIN_S,
    run_mobility_experiment,
    run_scatterpp_experiment,
)
from repro.flow import (
    check_client_conservation,
    check_result_conservation,
    check_state_conservation,
)
from repro.mobility import (
    AttachmentSegment,
    ClientTrajectory,
    HandoverConfig,
    SessionDirectory,
    default_site_profiles,
    random_trajectory,
)
from repro.net.netem import lte_profile
from repro.scatter.config import baseline_configs

PLACEMENT = baseline_configs()["C1"]

#: Outer bound on how long the resilience layer may take to reach a
#: verdict on one frame (retry budget + breaker window + fallback).
VERDICT_BUDGET_S = 3.0


def _check_all(result, duration_s):
    now = duration_s + DRAIN_S
    check_result_conservation(result)
    check_state_conservation(result)
    for stats in result.clients:
        check_client_conservation(stats, now=now,
                                  budget_s=VERDICT_BUDGET_S)


# ----------------------------------------------------------------------
# Trajectory model
# ----------------------------------------------------------------------
def test_trajectory_validation():
    with pytest.raises(ValueError):
        ClientTrajectory(client_id=0, segments=())
    with pytest.raises(ValueError):  # must start at t=0
        ClientTrajectory(client_id=0, segments=(
            AttachmentSegment(1.0, "e1"),))
    with pytest.raises(ValueError):  # strictly increasing starts
        ClientTrajectory(client_id=0, segments=(
            AttachmentSegment(0.0, "e1"), AttachmentSegment(0.0, "e2")))
    with pytest.raises(ValueError):
        AttachmentSegment(-1.0, "e1")
    with pytest.raises(ValueError):
        AttachmentSegment(0.0, "")


def test_trajectory_site_at_and_handovers():
    trajectory = ClientTrajectory(client_id=3, segments=(
        AttachmentSegment(0.0, "e1"),
        AttachmentSegment(4.0, "e2"),
        AttachmentSegment(9.0, "e1"),
    ))
    assert trajectory.initial_site == "e1"
    assert trajectory.site_at(0.0) == "e1"
    assert trajectory.site_at(3.999) == "e1"
    assert trajectory.site_at(4.0) == "e2"
    assert trajectory.site_at(100.0) == "e1"
    assert trajectory.handovers() == [(4.0, "e1", "e2"),
                                      (9.0, "e2", "e1")]


def test_trajectory_netem_schedule_carries_site_profiles():
    lte = lte_profile()
    trajectory = ClientTrajectory(client_id=0, segments=(
        AttachmentSegment(0.0, "e1"),           # no profile: untouched
        AttachmentSegment(5.0, "e2", netem=lte),
    ))
    assert trajectory.netem_schedule() == [(5.0, lte)]


def test_random_trajectory_is_deterministic_and_bounded():
    make = lambda: random_trajectory(  # noqa: E731
        0, duration_s=60.0, rng=np.random.default_rng(42),
        mean_dwell_s=8.0, min_dwell_s=2.0)
    a, b = make(), make()
    assert a == b  # same seed, same walk
    assert a.segments[0].start_s == 0.0
    high = 2.0 * 8.0 - 2.0
    for earlier, later in zip(a.segments, a.segments[1:]):
        # Every boundary is a real move with a bounded dwell.
        assert later.site != earlier.site
        assert 2.0 <= later.start_s - earlier.start_s <= high
    # Segments carry the per-site access profiles.
    profiles = default_site_profiles()
    for segment in a.segments:
        assert segment.netem == profiles[segment.site]


def test_random_trajectory_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_trajectory(0, duration_s=0.0, rng=rng)
    with pytest.raises(ValueError):
        random_trajectory(0, duration_s=10.0, rng=rng,
                          mean_dwell_s=1.0, min_dwell_s=2.0)
    with pytest.raises(ValueError):
        random_trajectory(0, duration_s=10.0, rng=rng, sites=())


# ----------------------------------------------------------------------
# Session directory + config
# ----------------------------------------------------------------------
class _FakeInstance:
    def __init__(self, address, running=True):
        self.address = address
        self.running = running

    def is_running(self):
        return self.running


def test_session_directory_routes_only_its_service():
    directory = SessionDirectory("sift")
    instance = _FakeInstance(address="e1:5001")
    directory.bind(7, instance, epoch=2)
    assert directory.route("sift", 7) == "e1:5001"
    assert directory.epoch(7) == 2
    # Wrong service or unknown client: fall back to the balancer.
    assert directory.route("matching", 7) is None
    assert directory.route("sift", 8) is None
    assert directory.epoch(8) == 0
    # A dead pinned replica must not capture traffic.
    instance.running = False
    assert directory.route("sift", 7) is None


def test_handover_config_validation_and_backoff():
    with pytest.raises(ValueError):
        HandoverConfig(max_attempts=0)
    with pytest.raises(ValueError):
        HandoverConfig(chunk_bytes=0)
    with pytest.raises(ValueError):
        HandoverConfig(warmup_s=-0.1)
    with pytest.raises(ValueError):
        HandoverConfig(retry_backoff_s=0.0)
    with pytest.raises(ValueError):
        HandoverConfig(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        HandoverConfig(max_transfer_rounds=0)
    config = HandoverConfig(retry_backoff_s=0.25, backoff_multiplier=2.0)
    assert config.backoff_s(1) == pytest.approx(0.25)
    assert config.backoff_s(2) == pytest.approx(0.5)
    assert config.backoff_s(3) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# The protocol, end to end
# ----------------------------------------------------------------------
ONE_MOVE = ClientTrajectory(client_id=0, segments=(
    AttachmentSegment(0.0, "e1"),
    AttachmentSegment(4.0, "e2"),
))
DURATION_S = 10.0


def _mobility(**kwargs):
    kwargs.setdefault("num_clients", 1)
    kwargs.setdefault("duration_s", DURATION_S)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("trajectories", [ONE_MOVE])
    return run_mobility_experiment(PLACEMENT, **kwargs)


def test_stateful_handover_moves_state_without_loss():
    # warmup_s=0 snapshots the source in the same event as the
    # handover trigger, so the in-flight session entries are caught
    # mid-pipeline instead of draining during the container warmup.
    result = _mobility(handover_config=HandoverConfig(warmup_s=0.0))
    report = result.mobility["report"]
    assert report["planned"] == 1
    assert report["started"] == 1
    assert report["completed"] == 1
    assert report["pending"] == 0
    # Real state crossed the wire, in real chunks, and none died.
    assert report["state_entries_moved"] > 0
    assert report["state_bytes_moved"] > 0
    assert report["transfer_chunks"] >= 1
    assert report["state_entries_lost"] == 0
    # The client saw the window open and cut over to the new epoch;
    # late results computed at the old site against the old epoch are
    # rejected, not double-counted.
    assert report["handover_windows"] >= 1
    assert report["rejected_stale_results"] > 0
    # MTTR is the window→cutover bound: positive, well under a second
    # for ~MBs of session state on a gigabit inter-site link.
    assert 0.0 < report["mttr_s"]["mean"] < 1.0
    (record,) = result.mobility["handovers"]
    assert record["outcome"] == "completed"
    assert record["from_site"] == "e1" and record["to_site"] == "e2"
    assert record["epoch"] == 1
    assert record["latency_s"] == pytest.approx(
        report["mttr_s"]["mean"])
    _check_all(result, DURATION_S)


def test_naive_baseline_loses_session_state():
    stateful = _mobility()
    naive = _mobility(naive=True)
    s_report = stateful.mobility["report"]
    n_report = naive.mobility["report"]
    # The naive rebind tears the session down: entries die, counted.
    assert n_report["state_entries_lost"] > 0
    assert n_report["state_entries_moved"] == 0
    assert s_report["state_entries_lost"] == 0
    # And the client pays for it: never fewer lost frames than the
    # stateful protocol on the identical trajectory and seed.
    assert s_report["frames_lost"] <= n_report["frames_lost"]
    _check_all(naive, DURATION_S)


def test_same_site_handover_is_a_noop():
    stay = ClientTrajectory(client_id=0, segments=(
        AttachmentSegment(0.0, "e1"),))
    result = _mobility(trajectories=[stay])
    report = result.mobility["report"]
    assert report["planned"] == 0
    assert report["started"] == 0
    assert report["state_entries_moved"] == 0
    assert report["handover_windows"] == 0
    _check_all(result, DURATION_S)


def test_rapid_second_handover_supersedes_the_first():
    bounce = ClientTrajectory(client_id=0, segments=(
        AttachmentSegment(0.0, "e1"),
        AttachmentSegment(4.0, "e2"),
        # Back before the first handover's warmup ends: supersede it.
        AttachmentSegment(4.05, "e1"),
    ))
    result = _mobility(trajectories=[bounce])
    report = result.mobility["report"]
    assert report["started"] == 2
    assert report["superseded"] == 1
    assert report["completed"] == 1
    outcomes = [r["outcome"] for r in result.mobility["handovers"]]
    assert outcomes == ["superseded", "completed"]
    _check_all(result, DURATION_S)


def test_source_crash_mid_handover_fails_over_forward():
    # Kill sift just as the handover's transfer gets going.  The
    # directory already points at e1's replica; with warmup 0.5 s the
    # transfer is in flight at 4.6 s.
    plan = FaultPlan([InstanceCrash(at_s=4.6, service="sift")])
    result = _mobility(plan=plan, seed=1)
    report = result.mobility["report"]
    assert report["started"] == 1
    assert report["pending"] == 0
    # The crash races the transfer: whichever phase it lands in, the
    # protocol must end in a terminal state without losing accounting.
    (record,) = result.mobility["handovers"]
    assert record["outcome"] in ("completed", "failed-over",
                                 "abandoned")
    if record["outcome"] == "failed-over":
        assert "source-crashed" in record["abort_reasons"]
    _check_all(result, DURATION_S)


def test_handover_retries_with_bounded_backoff_then_abandons():
    # An unwarmable target: C1 pins everything on e1/e2; ask for a
    # site that exists but has no room by saturating... simpler: a
    # target site name with no machine capacity is a scheduling error
    # path — instead force aborts via an impossible transfer timeout.
    config = HandoverConfig(transfer_timeout_s=1e-6, warmup_s=0.0,
                            retry_backoff_s=0.05, max_attempts=2)
    result = _mobility(handover_config=config)
    (record,) = result.mobility["handovers"]
    assert record["outcome"] == "abandoned"
    assert record["attempts"] == 2
    assert all(reason == "transfer-timeout"
               for reason in record["abort_reasons"])
    report = result.mobility["report"]
    assert report["abandoned"] == 1 and report["retried"] == 1
    # Nothing moved, and — rollback being free pre-cutover — nothing
    # was lost either: the session stayed at the source.
    assert report["state_entries_moved"] == 0
    assert report["state_entries_lost"] == 0
    _check_all(result, DURATION_S)


def test_mobility_off_run_is_bit_identical():
    """The mobility machinery must be invisible until engaged: a plain
    scatterpp run replays the same digest whether or not the mobility
    package was ever imported/exercised in the process (it was, by the
    tests above)."""
    a = run_scatterpp_experiment(PLACEMENT, num_clients=1,
                                 duration_s=2.0, seed=0)
    b = run_scatterpp_experiment(PLACEMENT, num_clients=1,
                                 duration_s=2.0, seed=0)
    assert a.trace_digest == b.trace_digest


def test_mobility_run_is_deterministic():
    results = [_mobility(seed=3, trajectories=None) for __ in range(2)]
    a, b = results
    assert a.trace_digest == b.trace_digest
    assert a.mobility == b.mobility
    assert [c.received for c in a.clients] == \
        [c.received for c in b.clients]
