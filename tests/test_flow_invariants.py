"""Property-based frame-conservation invariants for the flow substrate.

Hypothesis drives randomized (flow config × load × fault) schedules
through full scAtteR++ deployments and audits four invariants after
every run:

* **conservation** — every sidecar's ledger balances exactly:
  ``enqueued == dispatched + dropped_stale + dispatch_failed +
  detach_drained + pending + in_flight`` (and arrivals partition into
  enqueued/rejected/overflow/refused);
* **per-client FIFO** — at any one sidecar, a client's frames are
  taken off the queue in the order they entered it;
* **staleness** — no frame is handed to a service after spending more
  than the threshold queued;
* **credits** — advertised credits are never negative.

Runs use ``derandomize=True`` so CI spends a fixed, repeatable budget
(no flaky shrink storms); the schedule space still covers every
admission policy, batching on/off, credits/pacing on/off, and
mid-run instance crashes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.parallel import plan_tasks, run_tasks
from repro.experiments.runner import (
    DRAIN_S,
    _attach_tracer,
    _build,
)
from repro.flow import (
    ADMISSION_POLICIES,
    FlowConfig,
    check_sidecar_conservation,
)
from repro.scatter.config import PIPELINE_ORDER, baseline_configs
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs

PLACEMENT = baseline_configs()["C1"]
DURATION_S = 3.0
THRESHOLD_S = 0.100

SETTINGS = settings(max_examples=10, derandomize=True, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

FLOW_CONFIGS = st.builds(
    FlowConfig,
    admission=st.sampled_from(ADMISSION_POLICIES),
    admission_rate_fps=st.sampled_from([15.0, 30.0, 45.0]),
    admission_burst=st.sampled_from([2, 8]),
    batch_max=st.integers(min_value=1, max_value=5),
    credits=st.booleans(),
    client_pacing=st.booleans(),
    client_rate_fps=st.sampled_from([15.0, 22.0, 30.0]),
)

FAULTS = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(PIPELINE_ORDER),
              st.floats(min_value=0.2, max_value=0.8)))


def _run_schedule(flow, num_clients, seed, fault):
    """One full deployment under a randomized schedule."""
    kwargs = scatterpp_pipeline_kwargs(flow=flow)
    sim, testbed, orchestrator, pipeline, clients = _build(
        PLACEMENT, num_clients, seed, None, kwargs, flow=flow)
    tracer = _attach_tracer(orchestrator, clients)
    if fault is not None:
        service_name, when = fault
        instance = pipeline.instances(service_name)[0]
        sim.schedule(when * DURATION_S, instance.crash)
    for client in clients:
        client.start(DURATION_S)
    sim.run(until=DURATION_S + DRAIN_S)
    return pipeline, clients, tracer


def _sidecars(pipeline):
    return [instance.sidecar
            for service in PIPELINE_ORDER
            for instance in pipeline.instances(service)]


def _check_fifo_per_client(tracer):
    """Queue spans: per (instance, client), dequeue order follows
    enqueue order."""
    per_queue = {}
    for key in list(tracer._traces):
        trace = tracer.trace(key)
        client_id = key[0]
        for span in trace.spans:
            if span.kind != "queue":
                continue
            per_queue.setdefault((span.instance, span.name, client_id),
                                 []).append(span)
    assert per_queue, "no queue spans recorded: vacuous schedule"
    for spans in per_queue.values():
        spans.sort(key=lambda span: (span.start_s, span.end_s))
        for earlier, later in zip(spans, spans[1:]):
            if later.start_s > earlier.start_s:
                assert later.end_s >= earlier.end_s, (
                    "FIFO violated: a later-enqueued frame was taken "
                    f"first ({earlier} vs {later})")


@SETTINGS
@given(flow=FLOW_CONFIGS,
       num_clients=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=3),
       fault=FAULTS)
def test_flow_invariants_hold_under_random_schedules(
        flow, num_clients, seed, fault):
    pipeline, clients, tracer = _run_schedule(
        flow, num_clients, seed, fault)

    ledgers = []
    for service in PIPELINE_ORDER:
        for instance in pipeline.instances(service):
            # Conservation: the ledger balances *exactly*, even with a
            # crash mid-run (detach drain) or a round in flight at the
            # simulation horizon.
            ledgers.append(check_sidecar_conservation(instance))
            sidecar = instance.sidecar
            # Credits are clamped headroom: never negative.
            assert sidecar.credits() >= 0
            # Only served frames sample the queue-wait sketch.
            assert sidecar.stats.queue_wait_samples_s.total == \
                sidecar.stats.dispatched
            # Staleness: whatever reached the sketch waited at most
            # the threshold (the sketch's maximum is exact, not a
            # bucket estimate).
            maximum = sidecar.stats.queue_wait_samples_s.maximum
            assert maximum is None or maximum <= THRESHOLD_S + 1e-9

    # At least one sidecar did real work — the schedule wasn't vacuous.
    assert sum(ledger.enqueued for ledger in ledgers) > 0

    # Staleness, via the tracer this time: every dispatched frame's
    # queue span fits the threshold (stale frames never get a span).
    for key in list(tracer._traces):
        for span in tracer.trace(key).spans:
            if span.kind == "queue":
                assert span.duration_s <= THRESHOLD_S + 1e-9

    _check_fifo_per_client(tracer)


@SETTINGS
@given(batching=st.booleans(),
       seed=st.integers(min_value=0, max_value=3))
def test_conservation_with_and_without_batching(batching, seed):
    """The ledger balances identically whether dispatch batches or
    hands frames over one at a time."""
    flow = FlowConfig(batch_max=4 if batching else 1)
    pipeline, clients, __ = _run_schedule(flow, 2, seed, None)
    for sidecar in _sidecars(pipeline):
        if batching is False:
            assert sidecar.stats.batched_rounds == 0
    for service in PIPELINE_ORDER:
        for instance in pipeline.instances(service):
            check_sidecar_conservation(instance)


# ----------------------------------------------------------------------
# Worker-count independence (the determinism contract, flow edition)
# ----------------------------------------------------------------------
FLOW_CAMPAIGN = Campaign(
    name="flow-det", pipelines=("scatterpp-flow",),
    placements=("C1",), client_counts=(2,), duration_s=2.0,
    seeds=(0, 1))


def test_flow_campaign_workers_bit_identical():
    """scatterpp-flow cells shard across processes bit-for-bit."""
    serial = run_campaign(FLOW_CAMPAIGN)
    sharded = run_campaign(FLOW_CAMPAIGN, workers=4)
    assert not serial.failures and not sharded.failures
    assert serial.digests == sharded.digests
    metrics = lambda report: {  # noqa: E731
        cell: {name: metric.values
               for name, metric in sorted(cell_metrics.items())}
        for cell, cell_metrics in sorted(report.cells.items())}
    assert metrics(serial) == metrics(sharded)


def test_flow_ledgers_cross_process_boundary():
    """Worker summaries carry balanced conservation ledgers."""
    tasks = plan_tasks(FLOW_CAMPAIGN, seeds=(0,))
    for workers in (0, 4):
        outcomes = run_tasks(tasks, workers=workers)
        for outcome in outcomes:
            assert outcome.ok, outcome.failure
            flow = outcome.summary["flow"]
            assert flow is not None
            assert set(flow["services"]) == set(PIPELINE_ORDER)
            for ledger in flow["services"].values():
                assert ledger["balance"] == 0
            assert flow["config"]["admission"] in ADMISSION_POLICIES


def test_conservation_error_is_loud():
    """A cooked ledger fails the audit with a diagnostic, not silence."""
    from repro.flow import ConservationError
    from repro.flow.invariants import check_sidecar_conservation

    pipeline, __, __t = _run_schedule(FlowConfig(), 1, 0, None)
    instance = pipeline.instances("sift")[0]
    instance.sidecar.stats.dispatched += 1  # cook the books
    with pytest.raises(ConservationError):
        check_sidecar_conservation(instance)
