"""Tests for the adaptive (AIMD) client."""

import pytest

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.adaptive import AdaptiveArClient
from repro.scatter.client import ArClient
from repro.scatter.config import baseline_configs
from repro.scatter.pipeline import ScatterPipeline
from repro.sim import RngRegistry, Simulator


def run_clients(client_class, num_clients, duration_s=20.0, **kwargs):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=num_clients)
    orchestrator = Orchestrator(testbed)
    ScatterPipeline(testbed, orchestrator,
                    baseline_configs()["C1"]).deploy()
    orchestrator.start()
    clients = [client_class(client_id=i, node=node,
                            network=testbed.network,
                            registry=orchestrator.registry,
                            rng=rng.stream(f"client.{i}"), **kwargs)
               for i, node in enumerate(testbed.client_nodes)]
    for client in clients:
        client.start(duration_s)
    sim.run(until=duration_s + DRAIN_S)
    return clients


def test_adaptive_keeps_full_rate_when_uncongested():
    clients = run_clients(AdaptiveArClient, num_clients=1)
    client = clients[0]
    # A single client is served fine: the rate stays near 30 FPS.
    assert client.current_fps >= 25.0
    assert client.stats.success_rate() >= 0.80


def test_adaptive_backs_off_under_congestion():
    clients = run_clients(AdaptiveArClient, num_clients=4)
    for client in clients:
        assert client.current_fps < 25.0
        assert len(client.rate_history) > 2


def test_adaptive_improves_goodput_under_congestion():
    fixed = run_clients(ArClient, num_clients=4)
    adaptive = run_clients(AdaptiveArClient, num_clients=4)
    fixed_goodput = sum(c.stats.success_rate()
                        for c in fixed) / len(fixed)
    adaptive_goodput = sum(c.goodput_ratio()
                           for c in adaptive) / len(adaptive)
    # AIMD converts wasted frames into delivered ones.
    assert adaptive_goodput > fixed_goodput * 1.5
    # And delivered FPS does not collapse below the fixed client's.
    fixed_fps = sum(c.stats.fps(20.0) for c in fixed) / len(fixed)
    adaptive_fps = sum(c.stats.fps(20.0)
                       for c in adaptive) / len(adaptive)
    assert adaptive_fps >= fixed_fps * 0.8


def test_adaptive_respects_rate_floor():
    clients = run_clients(AdaptiveArClient, num_clients=4,
                          min_fps=8.0)
    for client in clients:
        assert client.current_fps >= 8.0
        for __, fps in client.rate_history:
            assert 8.0 <= fps <= 30.0


def test_adaptive_mean_rate_reported():
    clients = run_clients(AdaptiveArClient, num_clients=2)
    for client in clients:
        assert 5.0 <= client.mean_rate_fps() <= 30.0


def test_adaptive_validation():
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed)
    common = dict(client_id=0, node="nuc0", network=testbed.network,
                  registry=orchestrator.registry)
    with pytest.raises(ValueError):
        AdaptiveArClient(target_delivery_ratio=0.0, **common)
    with pytest.raises(ValueError):
        AdaptiveArClient(min_fps=0.0, **common)
    with pytest.raises(ValueError):
        AdaptiveArClient(min_fps=40.0, max_fps=30.0, **common)
    with pytest.raises(ValueError):
        AdaptiveArClient(decrease_factor=1.0, **common)
