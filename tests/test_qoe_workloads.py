"""Tests for the QoE estimator and the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S, run_scatter_experiment
from repro.metrics.qoe import estimate_qoe
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import baseline_configs
from repro.scatter.pipeline import ScatterPipeline
from repro.scatter.workloads import (
    BurstyClient,
    PoissonArrivalClient,
    arrival_cv,
)
from repro.sim import RngRegistry, Simulator


# ----------------------------------------------------------------------
# QoE estimator
# ----------------------------------------------------------------------
def test_qoe_perfect_conditions_near_five():
    estimate = estimate_qoe(fps=30.0, e2e_ms=40.0, success_rate=1.0,
                            jitter_ms=0.0)
    assert estimate.mos > 4.5
    assert estimate.latency_factor == 1.0


def test_qoe_terrible_conditions_near_one():
    estimate = estimate_qoe(fps=1.0, e2e_ms=500.0, success_rate=0.05,
                            jitter_ms=100.0)
    assert estimate.mos < 1.3


def test_qoe_latency_budget_is_free():
    inside = estimate_qoe(fps=30, e2e_ms=99.0, success_rate=1.0,
                          jitter_ms=0.0)
    at_edge = estimate_qoe(fps=30, e2e_ms=100.0, success_rate=1.0,
                           jitter_ms=0.0)
    beyond = estimate_qoe(fps=30, e2e_ms=200.0, success_rate=1.0,
                          jitter_ms=0.0)
    assert inside.mos == at_edge.mos
    assert beyond.mos < at_edge.mos


def test_qoe_validation():
    with pytest.raises(ValueError):
        estimate_qoe(fps=-1, e2e_ms=0, success_rate=1, jitter_ms=0)
    with pytest.raises(ValueError):
        estimate_qoe(fps=1, e2e_ms=0, success_rate=1.5, jitter_ms=0)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0, max_value=60),
       st.floats(min_value=0, max_value=1000),
       st.floats(min_value=0, max_value=1),
       st.floats(min_value=0, max_value=200))
def test_qoe_bounds_property(fps, e2e, success, jitter):
    estimate = estimate_qoe(fps=fps, e2e_ms=e2e, success_rate=success,
                            jitter_ms=jitter)
    assert 1.0 <= estimate.mos <= 5.0
    for factor in (estimate.framerate_factor, estimate.latency_factor,
                   estimate.stability_factor, estimate.jitter_factor):
        assert 0.0 <= factor <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0, max_value=29),
       st.floats(min_value=0.5, max_value=20))
def test_qoe_monotone_in_fps(fps, delta):
    low = estimate_qoe(fps=fps, e2e_ms=50, success_rate=0.9,
                       jitter_ms=5)
    high = estimate_qoe(fps=fps + delta, e2e_ms=50, success_rate=0.9,
                        jitter_ms=5)
    assert high.mos >= low.mos


def test_qoe_ranks_scatterpp_above_scatter():
    scatter = run_scatter_experiment(baseline_configs()["C1"],
                                     num_clients=4, duration_s=10.0)
    from repro.experiments.runner import run_scatterpp_experiment
    scatterpp = run_scatterpp_experiment(baseline_configs()["C1"],
                                         num_clients=4,
                                         duration_s=10.0)
    assert scatterpp.qoe().mos > scatter.qoe().mos


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def run_workload(client_class, duration_s=20.0, **kwargs):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed)
    ScatterPipeline(testbed, orchestrator,
                    baseline_configs()["C1"]).deploy()
    orchestrator.start()
    client = client_class(client_id=0, node="nuc0",
                          network=testbed.network,
                          registry=orchestrator.registry,
                          rng=rng.stream("client.0"), **kwargs)
    client.start(duration_s)
    sim.run(until=duration_s + DRAIN_S)
    return client


def test_poisson_client_mean_rate():
    client = run_workload(PoissonArrivalClient, duration_s=30.0)
    rate = client.stats.frames_sent / 30.0
    assert rate == pytest.approx(30.0, rel=0.15)


def test_poisson_client_is_memoryless_cv_near_one():
    client = run_workload(PoissonArrivalClient, duration_s=30.0)
    assert arrival_cv(client.stats) == pytest.approx(1.0, abs=0.2)


def test_periodic_client_cv_near_zero():
    client = run_workload(ArClient, duration_s=20.0)
    assert arrival_cv(client.stats) < 0.1


def test_bursty_client_rate_and_cv():
    client = run_workload(BurstyClient, duration_s=30.0,
                          burst_fps=60.0, duty_cycle=0.5,
                          burst_length_s=1.0)
    rate = client.stats.frames_sent / 30.0
    assert rate == pytest.approx(30.0, rel=0.2)
    # On/off arrivals are burstier than Poisson.
    assert arrival_cv(client.stats) > 1.0


def test_bursty_validation():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    orchestrator = Orchestrator(testbed)
    common = dict(client_id=0, node="nuc0", network=testbed.network,
                  registry=orchestrator.registry)
    with pytest.raises(ValueError):
        BurstyClient(burst_fps=0.0, **common)
    with pytest.raises(ValueError):
        BurstyClient(duty_cycle=0.0, **common)
    with pytest.raises(ValueError):
        BurstyClient(burst_length_s=0.0, **common)


def test_poisson_arrivals_hurt_noqueue_pipeline():
    """Memoryless arrivals collide more often with busy services than
    the periodic replay — measurably worse success at the same rate."""
    periodic = run_workload(ArClient, duration_s=30.0)
    poisson = run_workload(PoissonArrivalClient, duration_s=30.0)
    assert poisson.stats.success_rate() < \
        periodic.stats.success_rate()
