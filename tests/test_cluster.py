"""Unit tests for the cluster substrate."""

import pytest

from repro.cluster import (
    Container,
    ContainerState,
    GpuArchitecture,
    GpuDevice,
    Machine,
    MemoryAccount,
    UsageMeter,
    build_paper_testbed,
)
from repro.cluster.gpu import A40, RTX_2080, TESLA_V100_VIRTUALIZED
from repro.cluster.machine import GB
from repro.sim import RngRegistry, Simulator


# ----------------------------------------------------------------------
# UsageMeter
# ----------------------------------------------------------------------
def test_meter_idle_is_zero():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=4)
    sim.run(until=10.0)
    assert meter.utilization() == 0.0


def test_meter_full_busy_is_one():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=2)
    meter.add(2.0)
    sim.run(until=10.0)
    assert meter.utilization() == pytest.approx(1.0)


def test_meter_half_busy():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=2)
    meter.add(1.0)
    sim.schedule(5.0, meter.remove, 1.0)
    sim.run(until=10.0)
    # 1 of 2 cores for 5 s of a 10 s window = 25%.
    assert meter.utilization() == pytest.approx(0.25)


def test_meter_window_reset():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=1)
    meter.add(1.0)
    sim.run(until=4.0)
    assert meter.window_utilization(reset=True) == pytest.approx(1.0)
    meter.remove(1.0)
    sim.run(until=8.0)
    assert meter.window_utilization() == pytest.approx(0.0)


def test_meter_overflow_rejected():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=1)
    meter.add(1.0)
    with pytest.raises(ValueError):
        meter.add(1.0)


def test_meter_negative_rejected():
    sim = Simulator()
    meter = UsageMeter(sim, capacity=1)
    with pytest.raises(ValueError):
        meter.remove(1.0)


# ----------------------------------------------------------------------
# MemoryAccount
# ----------------------------------------------------------------------
def test_memory_allocate_free_peak():
    sim = Simulator()
    memory = MemoryAccount(sim, capacity_bytes=10 * GB)
    memory.allocate(4 * GB)
    memory.allocate(2 * GB)
    assert memory.in_use_bytes == 6 * GB
    memory.free(3 * GB)
    assert memory.in_use_bytes == 3 * GB
    assert memory.peak_bytes == 6 * GB
    assert memory.free_bytes == 7 * GB


def test_memory_overfree_rejected():
    sim = Simulator()
    memory = MemoryAccount(sim, capacity_bytes=GB)
    memory.allocate(10)
    with pytest.raises(ValueError):
        memory.free(100)


def test_memory_sampling():
    sim = Simulator()
    memory = MemoryAccount(sim, capacity_bytes=GB)
    memory.allocate(100)
    memory.sample()
    memory.allocate(100)
    memory.sample()
    assert memory.mean_usage_bytes() == pytest.approx(150)
    assert [v for __, v in memory.samples] == [100, 200]


# ----------------------------------------------------------------------
# GPU
# ----------------------------------------------------------------------
def test_gpu_architecture_factors():
    assert RTX_2080.speed_factor == 1.0
    assert A40.speed_factor < 1.0
    assert TESLA_V100_VIRTUALIZED.speed_factor > 1.0


def test_gpu_architecture_validation():
    with pytest.raises(ValueError):
        GpuArchitecture("bad", speed_factor=0.0, memory_gb=1.0)


def test_gpu_execute_scales_time():
    sim = Simulator()
    gpu = GpuDevice(sim, A40)
    done = []

    def work():
        yield from gpu.execute(0.100)
        done.append(sim.now)

    sim.spawn(work())
    sim.run()
    assert done == [pytest.approx(0.085)]


def test_gpu_contention_serializes():
    sim = Simulator()
    gpu = GpuDevice(sim, RTX_2080)
    done = []

    def work(tag):
        yield from gpu.execute(0.010)
        done.append((tag, sim.now))

    sim.spawn(work("a"))
    sim.spawn(work("b"))
    sim.run()
    assert done[0] == ("a", pytest.approx(0.010))
    assert done[1] == ("b", pytest.approx(0.020))
    assert gpu.meter.utilization() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Machine
# ----------------------------------------------------------------------
def test_machine_gpu_round_robin():
    sim = Simulator()
    machine = Machine(sim, "e1", cpu_cores=8, memory_gb=128,
                      gpu_architecture=RTX_2080, gpu_count=2)
    first = machine.assign_gpu()
    second = machine.assign_gpu()
    third = machine.assign_gpu()
    assert first.index == 0
    assert second.index == 1
    assert third is first


def test_machine_without_gpu_rejects_assignment():
    sim = Simulator()
    machine = Machine(sim, "nuc", cpu_cores=4, memory_gb=32)
    assert not machine.has_gpu
    with pytest.raises(ValueError):
        machine.assign_gpu()


def test_machine_cpu_execute_uses_factor():
    sim = Simulator()
    machine = Machine(sim, "cloud", cpu_cores=4, memory_gb=64,
                      cpu_factor=1.5)
    done = []

    def work():
        yield from machine.execute_cpu(0.100)
        done.append(sim.now)

    sim.spawn(work())
    sim.run()
    assert done == [pytest.approx(0.150)]


def test_machine_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Machine(sim, "bad", cpu_cores=0, memory_gb=1)
    with pytest.raises(ValueError):
        Machine(sim, "bad", cpu_cores=1, memory_gb=1, gpu_count=1)


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
def make_machine(sim):
    return Machine(sim, "e1", cpu_cores=8, memory_gb=128,
                   gpu_architecture=RTX_2080, gpu_count=2)


def test_container_lifecycle_memory():
    sim = Simulator()
    machine = make_machine(sim)
    container = Container(machine, "sift", base_memory_bytes=GB)
    assert container.state is ContainerState.PENDING
    assert machine.memory.in_use_bytes == 0
    container.start()
    assert container.state is ContainerState.RUNNING
    assert machine.memory.in_use_bytes == GB
    container.stop()
    assert container.state is ContainerState.TERMINATED
    assert machine.memory.in_use_bytes == 0


def test_container_state_memory_grows_and_frees():
    sim = Simulator()
    machine = make_machine(sim)
    container = Container(machine, "sift", base_memory_bytes=GB)
    container.start()
    container.allocate_state(GB / 2)
    assert container.memory_bytes() == pytest.approx(1.5 * GB)
    container.free_state(GB / 2)
    assert container.memory_bytes() == pytest.approx(GB)


def test_container_stop_releases_state_memory():
    sim = Simulator()
    machine = make_machine(sim)
    container = Container(machine, "sift", base_memory_bytes=GB)
    container.start()
    container.allocate_state(2 * GB)
    container.stop(failed=True)
    assert container.state is ContainerState.FAILED
    assert machine.memory.in_use_bytes == 0


def test_container_gpu_compute_busy_meter():
    sim = Simulator()
    machine = make_machine(sim)
    container = Container(machine, "sift", base_memory_bytes=GB)
    container.start()

    def work():
        yield from container.compute(0.010)

    sim.spawn(work())
    sim.run(until=0.010)
    assert container.busy_meter.utilization() == pytest.approx(1.0)
    assert machine.gpu_utilization() == pytest.approx(0.5)  # 1 of 2 GPUs


def test_container_cpu_only():
    sim = Simulator()
    machine = make_machine(sim)
    container = Container(machine, "primary", base_memory_bytes=GB,
                          uses_gpu=False)
    container.start()
    done = []

    def work():
        yield from container.compute(0.010)
        done.append(sim.now)

    sim.spawn(work())
    sim.run()
    assert done == [pytest.approx(0.010)]
    assert machine.cpu_utilization() > 0


# ----------------------------------------------------------------------
# Testbed
# ----------------------------------------------------------------------
def test_paper_testbed_shape():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=3)
    assert set(testbed.machines) == {"e1", "e2", "cloud",
                                     "nuc0", "nuc1", "nuc2"}
    assert testbed.client_nodes == ["nuc0", "nuc1", "nuc2"]
    e1 = testbed.machine("e1")
    assert e1.cpu_cores == 8
    assert len(e1.gpus) == 2
    e2 = testbed.machine("e2")
    assert e2.cpu_cores == 32
    assert e2.gpus[0].architecture is A40
    cloud = testbed.machine("cloud")
    assert len(cloud.gpus) == 1


def test_paper_testbed_rtts():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    net = testbed.network
    assert net.path_rtt("nuc0", "e1") == pytest.approx(0.001)
    assert net.path_rtt("nuc0", "e2") == pytest.approx(0.004)
    assert net.path_rtt("nuc0", "cloud") == pytest.approx(0.015)
    assert net.path_rtt("e1", "e2") == pytest.approx(0.003)


def test_paper_testbed_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_paper_testbed(sim, RngRegistry(0), num_clients=0)


def test_testbed_unknown_machine():
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    with pytest.raises(KeyError):
        testbed.machine("e9")
