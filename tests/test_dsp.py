"""Unit tests for the DSP framework."""

import numpy as np
import pytest

from repro.cluster import Container, Machine
from repro.cluster.gpu import RTX_2080
from repro.cluster.machine import GB
from repro.dsp import FrameRecord, RecordKind, StateStore, StreamService
from repro.net import Address, Network, ServiceRegistry
from repro.sim import Simulator


def make_env():
    sim = Simulator()
    network = Network(sim, rng=np.random.default_rng(0))
    network.add_link("a", "b", rtt_s=0.002)
    machine = Machine(sim, "b", cpu_cores=8, memory_gb=64,
                      gpu_architecture=RTX_2080, gpu_count=2)
    registry = ServiceRegistry()
    return sim, network, machine, registry


def make_record(frame=0, client=0, now=0.0):
    return FrameRecord(client_id=client, frame_number=frame,
                       reply_to=Address("a", 9000), step="test",
                       created_s=now, size_bytes=1000)


class EchoService(StreamService):
    """Test double: computes, then replies to the client."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.handled = []

    def process(self, record):
        yield from self.compute()
        self.handled.append((record.key, self.sim.now))
        reply = record.advanced("done", kind=RecordKind.RESULT)
        self.send(record.reply_to, reply)


def make_service(sim, network, machine, registry, base_time=0.010):
    container = Container(machine, "echo", base_memory_bytes=GB)
    service = EchoService(name="echo", network=network,
                          registry=registry, container=container,
                          address=Address("b", 5000),
                          base_time_s=base_time,
                          rng=np.random.default_rng(1))
    service.start()
    return service


# ----------------------------------------------------------------------
# FrameRecord
# ----------------------------------------------------------------------
def test_record_key_and_age():
    record = make_record(frame=7, client=3, now=1.0)
    assert record.key == (3, 7)
    assert record.age_s(1.5) == pytest.approx(0.5)


def test_record_advanced_copies():
    record = make_record()
    advanced = record.advanced("sift", size_bytes=2000, foo="bar")
    assert advanced.step == "sift"
    assert advanced.size_bytes == 2000
    assert advanced.meta == {"foo": "bar"}
    assert record.step == "test"
    assert record.size_bytes == 1000
    assert record.meta == {}


def test_record_advanced_kind():
    record = make_record()
    fetch = record.advanced("sift", kind=RecordKind.FETCH)
    assert fetch.kind is RecordKind.FETCH
    assert record.kind is RecordKind.FRAME


# ----------------------------------------------------------------------
# StreamService
# ----------------------------------------------------------------------
def test_service_processes_and_replies():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry)
    got = []
    network.bind(Address("a", 9000),
                 lambda datagram: got.append(
                     (sim.now, datagram.payload.kind)))
    service.send(service.address, make_record())  # self-deliver via net
    sim.run()
    assert service.stats.processed == 1
    assert got and got[0][1] is RecordKind.RESULT


def test_service_drops_when_busy():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry,
                           base_time=0.050)
    client = Address("a", 9000)
    network.bind(client, lambda datagram: None)

    def burst():
        for frame in range(3):
            service.send(service.address, make_record(frame=frame))
            yield sim.timeout(0.001)

    sim.spawn(burst())
    sim.run()
    assert service.stats.received == 3
    assert service.stats.processed == 1
    assert service.stats.dropped_busy == 2


def test_service_accepts_after_finishing():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry,
                           base_time=0.010)
    network.bind(Address("a", 9000), lambda datagram: None)

    def paced():
        for frame in range(3):
            service.send(service.address, make_record(frame=frame))
            yield sim.timeout(0.030)

    sim.spawn(paced())
    sim.run()
    assert service.stats.processed == 3
    assert service.stats.dropped_busy == 0


def test_control_records_bypass_busy_drop():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry,
                           base_time=0.050)
    network.bind(Address("a", 9000), lambda datagram: None)
    controls = []
    service.on_control = controls.append  # type: ignore[assignment]

    def scenario():
        service.send(service.address, make_record(frame=0))
        yield sim.timeout(0.005)  # service now busy
        control = make_record(frame=1).advanced(
            "test", kind=RecordKind.FETCH_RESPONSE)
        service.send(service.address, control)

    sim.spawn(scenario())
    sim.run()
    assert len(controls) == 1
    assert service.stats.dropped_busy == 0


def test_service_latency_samples_recorded():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry,
                           base_time=0.010)
    network.bind(Address("a", 9000), lambda datagram: None)
    service.send(service.address, make_record())
    sim.run()
    assert len(service.stats.latency_samples_s) == 1
    # One sample: the sketch's exact mean *is* the sample.
    assert service.stats.latency_samples_s.mean == pytest.approx(
        0.010, rel=0.5)
    assert service.stats.mean_latency_s() > 0


def test_ingress_fps_window():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry,
                           base_time=0.001)
    network.bind(Address("a", 9000), lambda datagram: None)

    def paced():
        for frame in range(30):
            service.send(service.address, make_record(frame=frame))
            yield sim.timeout(1.0 / 30.0)

    sim.spawn(paced())
    sim.run()
    assert service.stats.ingress_fps(1.0, sim.now) == pytest.approx(
        30.0, rel=0.2)


def test_send_downstream_uses_registry():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry)
    sink_a = Address("b", 7001)
    sink_b = Address("b", 7002)
    registry.register("sink", sink_a)
    registry.register("sink", sink_b)
    hits = {"a": 0, "b": 0}
    network.bind(sink_a, lambda d: hits.__setitem__("a", hits["a"] + 1))
    network.bind(sink_b, lambda d: hits.__setitem__("b", hits["b"] + 1))
    for frame in range(4):
        assert service.send_downstream("sink", make_record(frame=frame))
    sim.run()
    assert hits == {"a": 2, "b": 2}  # round-robin


def test_send_downstream_unknown_service_returns_false():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry)
    assert not service.send_downstream("ghost", make_record())


def test_stop_unbinds_and_frees():
    sim, network, machine, registry = make_env()
    service = make_service(sim, network, machine, registry)
    assert machine.memory.in_use_bytes == GB
    service.stop()
    assert machine.memory.in_use_bytes == 0
    assert registry.instances("echo") == []


def test_service_validation():
    sim, network, machine, registry = make_env()
    container = Container(machine, "bad", base_memory_bytes=GB)
    with pytest.raises(ValueError):
        EchoService(name="bad", network=network, registry=registry,
                    container=container, address=Address("b", 1),
                    base_time_s=0.0)


# ----------------------------------------------------------------------
# StateStore
# ----------------------------------------------------------------------
def make_store(ttl=1.0):
    sim = Simulator()
    machine = Machine(sim, "m", cpu_cores=4, memory_gb=64,
                      gpu_architecture=RTX_2080, gpu_count=1)
    container = Container(machine, "sift", base_memory_bytes=GB)
    container.start()
    return sim, machine, container, StateStore(sim, container, ttl_s=ttl)


def test_store_put_fetch_roundtrip():
    sim, machine, container, store = make_store()
    store.put(("c", 1), "features", size_bytes=1000)
    assert len(store) == 1
    assert machine.memory.in_use_bytes == GB + 1000
    assert store.fetch(("c", 1)) == "features"
    assert len(store) == 0
    assert machine.memory.in_use_bytes == GB


def test_store_fetch_missing_returns_none():
    __, __m, __c, store = make_store()
    assert store.fetch("ghost") is None


def test_store_ttl_eviction_frees_memory():
    sim, machine, container, store = make_store(ttl=0.5)
    store.put(("c", 1), "x", size_bytes=1000)
    sim.run(until=0.4)
    assert len(store) == 1
    sim.run(until=0.6)
    assert len(store) == 0
    assert store.stats_expired == 1
    assert machine.memory.in_use_bytes == GB


def test_store_replace_retimes_entry():
    sim, machine, container, store = make_store(ttl=0.5)
    store.put("k", "old", size_bytes=100)

    def replace_later():
        yield sim.timeout(0.4)
        store.put("k", "new", size_bytes=200)

    sim.spawn(replace_later())
    sim.run(until=0.7)
    # Replaced at 0.4 with a fresh TTL: still alive at 0.7.
    assert store.peek("k") == "new"
    sim.run(until=1.0)
    assert store.peek("k") is None
    assert machine.memory.in_use_bytes == GB


def test_store_bytes_in_use():
    __, __m, __c, store = make_store()
    store.put("a", 1, size_bytes=100)
    store.put("b", 2, size_bytes=200)
    assert store.bytes_in_use == 300


def test_store_validation():
    sim = Simulator()
    machine = Machine(sim, "m", cpu_cores=4, memory_gb=64)
    container = Container(machine, "s", base_memory_bytes=GB,
                          uses_gpu=False)
    with pytest.raises(ValueError):
        StateStore(sim, container, ttl_s=0.0)
