"""Tests for background co-tenants."""

import numpy as np
import pytest

from repro.cluster.gpu import RTX_2080, GpuDevice
from repro.cluster.machine import Machine
from repro.cluster.tenants import BackgroundTenant
from repro.sim import Simulator


def test_tenant_occupies_gpu_on_duty_cycle():
    sim = Simulator()
    gpu = GpuDevice(sim, RTX_2080)
    tenant = BackgroundTenant(sim, gpu=gpu, duty_cycle=0.5,
                              period_s=0.1, intensity=1.0,
                              rng=np.random.default_rng(0))
    tenant.start()
    sim.run(until=5.0)
    assert tenant.kernels_run > 20
    # Utilization lands near the configured duty cycle.
    assert gpu.meter.utilization() == pytest.approx(0.5, abs=0.12)


def test_tenant_slows_co_located_work():
    def run(duty):
        sim = Simulator()
        gpu = GpuDevice(sim, RTX_2080)
        tenant = BackgroundTenant(sim, gpu=gpu, duty_cycle=duty,
                                  period_s=0.05,
                                  rng=np.random.default_rng(1))
        tenant.start()
        done = []

        def work():
            for __ in range(50):
                yield from gpu.execute(0.005)
            done.append(sim.now)

        sim.spawn(work())
        sim.run(until=60.0)
        return done[0]

    assert run(0.5) > run(0.0) * 1.3


def test_tenant_on_cpu():
    sim = Simulator()
    machine = Machine(sim, "m", cpu_cores=2, memory_gb=8)
    tenant = BackgroundTenant(sim, machine=machine, duty_cycle=0.3,
                              period_s=0.1,
                              rng=np.random.default_rng(2))
    tenant.start()
    sim.run(until=3.0)
    assert tenant.kernels_run > 0
    # One of two cores busy 30% of the time => ~15% machine CPU.
    assert machine.cpu_utilization() == pytest.approx(0.15, abs=0.05)


def test_zero_duty_tenant_is_inert():
    sim = Simulator()
    gpu = GpuDevice(sim, RTX_2080)
    tenant = BackgroundTenant(sim, gpu=gpu, duty_cycle=0.0)
    tenant.start()
    sim.run(until=1.0)
    assert tenant.kernels_run == 0
    assert gpu.meter.utilization() == 0.0


def test_tenant_validation():
    sim = Simulator()
    gpu = GpuDevice(sim, RTX_2080)
    machine = Machine(sim, "m", cpu_cores=1, memory_gb=1)
    with pytest.raises(ValueError):
        BackgroundTenant(sim)  # neither
    with pytest.raises(ValueError):
        BackgroundTenant(sim, gpu=gpu, machine=machine)  # both
    with pytest.raises(ValueError):
        BackgroundTenant(sim, gpu=gpu, duty_cycle=1.0)
    with pytest.raises(ValueError):
        BackgroundTenant(sim, gpu=gpu, period_s=0.0)
