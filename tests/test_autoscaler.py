"""Unit tests for the autoscaling policies and loop."""

import pytest

from repro.cluster.testbed import build_paper_testbed
from repro.orchestra.autoscaler import (
    AppAwareScalingPolicy,
    Autoscaler,
    HardwareScalingPolicy,
)
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.config import uniform_config
from repro.scatter.pipeline import ScatterPipeline
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.sim import RngRegistry, Simulator


def make_deployment(with_sidecars=True):
    sim = Simulator()
    testbed = build_paper_testbed(sim, RngRegistry(0), num_clients=1)
    orchestrator = Orchestrator(testbed)
    kwargs = scatterpp_pipeline_kwargs() if with_sidecars else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               uniform_config("E2", "e2"), **kwargs)
    pipeline.deploy()
    orchestrator.start()
    return sim, testbed, orchestrator, pipeline


# ----------------------------------------------------------------------
# HardwareScalingPolicy
# ----------------------------------------------------------------------
def test_hardware_policy_quiet_when_idle():
    sim, __, orchestrator, __p = make_deployment()
    sim.run(until=2.5)  # a couple of monitor samples, no load
    policy = HardwareScalingPolicy(utilization_threshold=0.5)
    assert policy.services_to_scale(orchestrator) == {}


def test_hardware_policy_flags_hot_machine():
    sim, testbed, orchestrator, __ = make_deployment()
    machine = testbed.machine("e2")

    def hog():
        # Saturate both E2 GPUs across the sampling window.
        for gpu in machine.gpus:
            gpu.meter.add(1.0)
        yield sim.timeout(3.0)

    sim.spawn(hog())
    sim.run(until=2.5)
    policy = HardwareScalingPolicy(utilization_threshold=0.5)
    flagged = policy.services_to_scale(orchestrator)
    # Every service hosted on the hot machine is flagged — the policy
    # cannot attribute the heat to one service.
    assert set(flagged) == set(orchestrator.services())
    severity, reason = flagged["sift"]
    assert severity > 0.5
    assert "e2" in reason


def test_hardware_policy_validation():
    with pytest.raises(ValueError):
        HardwareScalingPolicy(utilization_threshold=0.0)


# ----------------------------------------------------------------------
# AppAwareScalingPolicy
# ----------------------------------------------------------------------
def test_app_aware_policy_quiet_without_drops():
    sim, __, orchestrator, __p = make_deployment()
    sim.run(until=1.0)
    policy = AppAwareScalingPolicy()
    assert policy.services_to_scale(orchestrator) == {}


def test_app_aware_policy_flags_dropping_service():
    sim, __, orchestrator, __p = make_deployment()
    sim.run(until=1.0)
    sift = orchestrator.instances("sift")[0]
    sift.sidecar.stats.dropped_stale = 50
    sift.sidecar.stats.dispatched = 50
    policy = AppAwareScalingPolicy(drop_ratio_threshold=0.05)
    flagged = policy.services_to_scale(orchestrator)
    assert "sift" in flagged
    severity, reason = flagged["sift"]
    assert severity == pytest.approx(0.5)
    assert "drop ratio" in reason


def test_app_aware_policy_uses_windows_not_cumulative():
    sim, __, orchestrator, __p = make_deployment()
    sift = orchestrator.instances("sift")[0]
    policy = AppAwareScalingPolicy(drop_ratio_threshold=0.05)

    sift.sidecar.stats.dropped_stale = 50
    sift.sidecar.stats.dispatched = 50
    assert "sift" in policy.services_to_scale(orchestrator)

    # No new drops since the last evaluation: the window is clean even
    # though cumulative counters still show 50%.
    sift.sidecar.stats.dispatched = 150
    flagged = policy.services_to_scale(orchestrator)
    assert "sift" not in flagged


def test_app_aware_policy_ignores_plain_services():
    sim, __, orchestrator, __p = make_deployment(with_sidecars=False)
    policy = AppAwareScalingPolicy()
    # No sidecars -> no hooks -> never flags (and never crashes).
    assert policy.services_to_scale(orchestrator) == {}


def test_app_aware_policy_validation():
    with pytest.raises(ValueError):
        AppAwareScalingPolicy(drop_ratio_threshold=0.0)
    with pytest.raises(ValueError):
        AppAwareScalingPolicy(queue_depth_threshold=0)


# ----------------------------------------------------------------------
# Autoscaler loop
# ----------------------------------------------------------------------
class StubPolicy:
    """Flags a fixed set of services on every evaluation."""

    def __init__(self, flagged):
        self.flagged = flagged

    def services_to_scale(self, orchestrator):
        return dict(self.flagged)


def test_autoscaler_requires_consecutive_breaches():
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=2, cooldown_s=0.0,
                            placement_machine="e1")
    assert autoscaler.evaluate() == []
    actions = autoscaler.evaluate()
    assert len(actions) == 1
    assert actions[0].service == "sift"
    assert len(orchestrator.instances("sift")) == 2


def test_autoscaler_scales_only_worst_offender():
    sim, __, orchestrator, __p = make_deployment()
    policy = StubPolicy({"sift": (0.9, "big"), "lsh": (0.1, "small")})
    autoscaler = Autoscaler(orchestrator, policy, breaches_required=1,
                            cooldown_s=0.0, placement_machine="e1")
    actions = autoscaler.evaluate()
    assert [a.service for a in actions] == ["sift"]
    assert len(orchestrator.instances("lsh")) == 1


def test_autoscaler_respects_cooldown_and_max_replicas():
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=1, cooldown_s=100.0,
                            max_replicas=2, placement_machine="e1")
    assert len(autoscaler.evaluate()) == 1
    # Cooldown blocks the next action even though the breach persists.
    assert autoscaler.evaluate() == []
    autoscaler._cooldown_until["sift"] = 0.0
    # Max replicas (2) already reached.
    assert autoscaler.evaluate() == []
    assert len(orchestrator.instances("sift")) == 2


def test_autoscaler_breach_counter_resets_when_clear():
    sim, __, orchestrator, __p = make_deployment()
    policy = StubPolicy({"sift": (1.0, "test")})
    autoscaler = Autoscaler(orchestrator, policy, breaches_required=2,
                            cooldown_s=0.0, placement_machine="e1")
    autoscaler.evaluate()       # breach 1
    policy.flagged = {}
    autoscaler.evaluate()       # clear: counter resets
    policy.flagged = {"sift": (1.0, "test")}
    assert autoscaler.evaluate() == []   # breach 1 again
    assert len(autoscaler.evaluate()) == 1


def test_autoscaler_periodic_loop_runs():
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            interval_s=1.0, breaches_required=2,
                            cooldown_s=0.0, placement_machine="e1")
    autoscaler.start()
    sim.run(until=2.5)
    assert len(orchestrator.instances("sift")) == 2
    assert autoscaler.decisions[0].replicas_after == 2


def test_autoscaler_validation():
    sim, __, orchestrator, __p = make_deployment()
    with pytest.raises(ValueError):
        Autoscaler(orchestrator, StubPolicy({}), interval_s=0.0)
    with pytest.raises(ValueError):
        Autoscaler(orchestrator, StubPolicy({}), breaches_required=0)
    with pytest.raises(ValueError):
        Autoscaler(orchestrator, StubPolicy({}), max_replicas=0)


# ----------------------------------------------------------------------
# Ghost services: log-and-skip, never raise, never resurrect
# ----------------------------------------------------------------------
def test_autoscaler_skips_never_deployed_ghost():
    """A policy flagging a service the orchestrator never deployed
    must be logged and skipped, not raise out of the loop."""
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"ghost": (1.0, "phantom")}),
                            breaches_required=1, cooldown_s=0.0)
    assert autoscaler.evaluate() == []
    assert [s.service for s in autoscaler.skipped] == ["ghost"]
    assert "ghost service" in autoscaler.skipped[0].reason


def test_autoscaler_never_resurrects_scaled_to_zero_service():
    """A service scaled down to zero replicas stays down: the stale
    breach must not let the autoscaler redeploy it."""
    sim, __, orchestrator, __p = make_deployment()
    orchestrator.scale_down("sift")
    assert orchestrator.instances("sift") == []
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "stale flag")}),
                            breaches_required=1, cooldown_s=0.0,
                            placement_machine="e1")
    assert autoscaler.evaluate() == []
    assert autoscaler.evaluate() == []
    assert orchestrator.instances("sift") == []
    assert all("ghost" in s.reason for s in autoscaler.skipped)
    assert len(autoscaler.skipped) == 2


def test_autoscaler_catches_orchestrator_error_on_scale_up():
    """If the control-plane entry vanishes between the gate checks and
    scale_up, the OrchestratorError is logged, not propagated."""
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=1, cooldown_s=0.0,
                            placement_machine="e1")
    del orchestrator._slas["sift"]
    assert autoscaler.evaluate() == []
    assert len(autoscaler.skipped) == 1
    assert "scale_up failed" in autoscaler.skipped[0].reason
    assert "never deployed" in autoscaler.skipped[0].reason


# ----------------------------------------------------------------------
# Power budgets
# ----------------------------------------------------------------------
def test_autoscaler_deployment_power_budget_vetoes():
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=1, cooldown_s=0.0,
                            placement_machine="e1",
                            power_budget_w=1.0)
    assert autoscaler.evaluate() == []
    assert len(orchestrator.instances("sift")) == 1
    assert len(autoscaler.skipped) == 1
    assert "deployment power budget" in autoscaler.skipped[0].reason


def test_autoscaler_generous_power_budget_allows_scaling():
    sim, __, orchestrator, __p = make_deployment()
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=1, cooldown_s=0.0,
                            placement_machine="e1",
                            power_budget_w=100000.0)
    assert len(autoscaler.evaluate()) == 1
    assert len(orchestrator.instances("sift")) == 2
    assert autoscaler.skipped == []


def test_autoscaler_per_service_sla_power_budget():
    import dataclasses

    sim, __, orchestrator, __p = make_deployment()
    sla = orchestrator.sla_for("sift")
    orchestrator._slas["sift"] = dataclasses.replace(
        sla, power_budget_w=1.0)
    autoscaler = Autoscaler(orchestrator,
                            StubPolicy({"sift": (1.0, "test")}),
                            breaches_required=1, cooldown_s=0.0,
                            placement_machine="e1")
    assert autoscaler.evaluate() == []
    assert len(orchestrator.instances("sift")) == 1
    assert "service power budget" in autoscaler.skipped[0].reason


def test_power_budget_validation():
    from repro.orchestra.sla import ServiceSla

    sim, __, orchestrator, __p = make_deployment()
    with pytest.raises(ValueError):
        Autoscaler(orchestrator, StubPolicy({}), power_budget_w=0.0)
    with pytest.raises(ValueError):
        ServiceSla(service="x", memory_bytes=1, power_budget_w=-5.0)


def test_scale_up_preserves_sla_power_budget():
    """The machine-pinned SLA reconstruction must carry the budget."""
    import dataclasses

    sim, __, orchestrator, __p = make_deployment()
    sla = orchestrator.sla_for("sift")
    orchestrator._slas["sift"] = dataclasses.replace(
        sla, power_budget_w=10000.0)
    orchestrator.scale_up("sift", machine="e1")
    assert orchestrator.sla_for("sift").power_budget_w == 10000.0
