"""Unit tests for the discrete-event kernel."""

import functools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import (
    AnyOf,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)
from repro.sim import kernel as kernel_mod
from repro.sim import reference as reference_mod
from repro.sim.kernel import TraceDigest, _event_kind


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_schedule_orders_by_time():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("x", "y", "z"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["x", "y", "z"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, True)
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [True]


def test_process_timeout_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.5)
        trace.append(("mid", sim.now))
        yield sim.timeout(0.5)
        trace.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield sim.timeout(1.0)
        return 42

    def waiter():
        value = yield sim.spawn(worker())
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert results == [(1.0, 42)]


def test_signal_delivers_value():
    sim = Simulator()
    signal = sim.signal()
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    def firer():
        yield sim.timeout(2.0)
        signal.fire("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["payload"]


def test_signal_fire_twice_raises():
    sim = Simulator()
    signal = sim.signal()
    signal.fire(1)
    with pytest.raises(SimulationError):
        signal.fire(2)


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    signal = sim.signal()
    signal.fire("early")
    got = []

    def waiter():
        value = yield signal
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_any_of_returns_winner():
    sim = Simulator()
    got = []

    def waiter():
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        winner, value = yield sim.any_of([fast, slow])
        got.append((sim.now, value, winner is fast))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1.0, "fast", True)]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_all_of_collects_values():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(2.0, ["a", "b"])]


def test_interrupt_raises_in_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt("wake")

    sim.spawn(interrupter())
    sim.run()
    assert trace == [("interrupted", 3.0, "wake")]


def test_interrupted_process_ignores_stale_wakeup():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            trace.append("timeout-fired")
        except Interrupt:
            trace.append("interrupted")
            yield sim.timeout(10.0)
            trace.append("second-sleep-done")

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, None)
    sim.run()
    # The original 5 s timeout must not resume the process spuriously.
    assert trace == ["interrupted", "second-sleep-done"]
    assert sim.now == 11.0


def test_unhandled_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, "bye")
    sim.run()
    assert proc.fired
    assert proc.value == "bye"


def test_interrupt_after_death_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value is None


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_nested_process_spawning():
    sim = Simulator()
    order = []

    def child(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)
        return tag

    def parent():
        first = yield sim.spawn(child("one", 1.0))
        second = yield sim.spawn(child("two", 1.0))
        order.append((first, second, sim.now))

    sim.spawn(parent())
    sim.run()
    assert order == ["one", "two", ("one", "two", 2.0)]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def evil():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    sim.schedule(1.0, evil)
    sim.run()
    assert errors and "re-entrant" in errors[0]


# ----------------------------------------------------------------------
# Trace digest
# ----------------------------------------------------------------------
def test_trace_digest_identical_for_identical_programs():
    def run_once():
        sim = Simulator()

        def proc():
            yield sim.timeout(1.5)
            yield sim.timeout(0.5)

        sim.spawn(proc())
        sim.run()
        return sim.fingerprint(), sim.digest.events

    first, second = run_once(), run_once()
    assert first == second
    assert first[1] > 0


def test_trace_digest_differs_when_trajectory_differs():
    def run_once(delay):
        sim = Simulator()
        sim.schedule(delay, lambda: None)
        sim.run()
        return sim.fingerprint()

    assert run_once(1.0) != run_once(2.0)


def test_trace_digest_can_be_disabled():
    sim = Simulator(digest=False)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.fingerprint() is None
    assert sim.digest is None


# ----------------------------------------------------------------------
# Property-based: random waitable-DAG programs
# ----------------------------------------------------------------------
#
# A seeded generator builds an arbitrary program out of Timeout /
# Signal / AnyOf / AllOf / child-process joins / interrupts, runs it,
# and records every completion.  Invariants checked on every program:
# replay stability (identical log and digest on a fresh simulator), no
# double-resume (each (process, step) completes exactly once), no
# double-fire (the kernel would raise SimulationError), and quiescence
# (every process terminates — each waitable is bounded by a timeout or
# a firer).

def _random_program(seed, mod=kernel_mod):
    """Build and run one random program; return (log, fingerprint).

    ``mod`` selects the kernel implementation (:mod:`repro.sim.kernel`
    or its pre-optimization twin :mod:`repro.sim.reference`); the
    program itself only touches ``Simulator`` methods, so the same
    seed replays the identical program on either kernel.
    """
    sim = mod.Simulator()
    interrupt_cls = mod.Interrupt
    rng = random.Random(seed)
    log = []
    signals = [sim.signal() for __ in range(rng.randint(1, 3))]

    def body(pid, depth):
        for step in range(rng.randint(1, 4)):
            try:
                roll = rng.random()
                if roll < 0.35 or depth >= 2:
                    value = yield sim.timeout(
                        rng.randrange(0, 300) / 100.0, ("t", step))
                elif roll < 0.50:
                    winner, value = yield sim.any_of(
                        [rng.choice(signals),
                         sim.timeout(rng.randrange(1, 250) / 100.0,
                                     "deadline")])
                elif roll < 0.65:
                    value = yield sim.all_of(
                        [sim.timeout(rng.randrange(0, 150) / 100.0),
                         sim.timeout(rng.randrange(0, 150) / 100.0)])
                elif roll < 0.85:
                    value = yield sim.spawn(
                        body(f"{pid}.{step}", depth + 1),
                        name=f"{pid}.{step}")
                else:
                    value = yield sim.timeout(
                        rng.randrange(50, 400) / 100.0)
            except interrupt_cls as interrupt:
                log.append((round(sim.now, 9), pid, step,
                            "interrupted", str(interrupt.cause)))
                continue
            log.append((round(sim.now, 9), pid, step, "done",
                        repr(value)))

    roots = [sim.spawn(body(f"p{index}", 0), name=f"p{index}")
             for index in range(rng.randint(2, 5))]

    def firer(index, sig, delay):
        yield sim.timeout(delay)
        if not sig.fired:
            sig.fire(("sig", index))

    for index, sig in enumerate(signals):
        sim.spawn(firer(index, sig, rng.randrange(1, 400) / 100.0),
                  name=f"firer-{index}")

    def interrupter(target, delay, cause):
        yield sim.timeout(delay)
        target.interrupt(cause)

    for count in range(rng.randint(0, 3)):
        sim.spawn(interrupter(rng.choice(roots),
                              rng.randrange(0, 350) / 100.0,
                              f"intr-{count}"),
                  name=f"interrupter-{count}")

    sim.run()
    assert all(proc.fired for proc in roots), "program did not quiesce"
    return log, sim.fingerprint()


PROPERTY = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_replay_identically(seed):
    first_log, first_digest = _random_program(seed)
    second_log, second_digest = _random_program(seed)
    assert first_log == second_log
    assert first_digest == second_digest


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_never_double_resume(seed):
    log, __ = _random_program(seed)
    completions = [(pid, step) for __t, pid, step, *__rest in log]
    assert len(completions) == len(set(completions)), \
        "a (process, step) completed twice — double resume"


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_log_in_time_order(seed):
    log, __ = _random_program(seed)
    times = [entry[0] for entry in log]
    assert times == sorted(times)


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_match_reference_kernel_bit_for_bit(seed):
    """The optimized kernel and its pre-optimization twin walk the
    identical trajectory: same completion log, same fingerprint."""
    opt_log, opt_digest = _random_program(seed, mod=kernel_mod)
    ref_log, ref_digest = _random_program(seed, mod=reference_mod)
    assert opt_log == ref_log
    assert opt_digest == ref_digest


# ----------------------------------------------------------------------
# Buffered digest vs reference byte stream
# ----------------------------------------------------------------------
def test_buffered_digest_matches_reference_on_random_streams():
    """Chunked blake2b folding hashes the identical byte stream.

    Streams long enough to cross several flush boundaries, with kinds
    spanning short/long/non-ASCII strings, and mid-stream hexdigest
    probes (which force partial flushes at arbitrary offsets)."""
    rng = random.Random(20260807)
    buffered = TraceDigest()
    reference = reference_mod.TraceDigest()
    kinds = ["Timeout._expire", "Process._resume", "k",
             "véry-unicode-✓-kind", "Q" * 500]
    for seq in range(5000):
        when = rng.random() * 1e4
        kind = rng.choice(kinds)
        buffered.record(when, seq, kind)
        reference.record(when, seq, kind)
        if rng.random() < 0.004:
            assert buffered.hexdigest() == reference.hexdigest()
    assert buffered.hexdigest() == reference.hexdigest()
    assert buffered.events == reference.events == 5000


def test_record_event_agrees_with_record_for_every_callback_shape():
    """The memoized ``record_event`` and the string-keyed ``record``
    digest identically across the callback zoo the kernel schedules."""
    class Carrier:
        def method(self):
            pass

        def __call__(self):
            pass

    def plain():
        pass

    callbacks = [Carrier().method, Carrier().method, Carrier(), plain,
                 lambda: None, len, print, functools.partial(plain),
                 Carrier.method]
    by_event = TraceDigest()
    by_kind = TraceDigest()
    for seq, callback in enumerate(callbacks * 7):
        by_event.record_event(0.25 * seq, seq, callback)
        by_kind.record(0.25 * seq, seq, _event_kind(callback))
    assert by_event.hexdigest() == by_kind.hexdigest()
    assert by_event.events == by_kind.events


# ----------------------------------------------------------------------
# Pre-fired composite children
# ----------------------------------------------------------------------
def test_any_of_with_prefired_child_wins_immediately():
    sim = Simulator()
    early = sim.signal()
    early.fire("early")
    got = []

    def waiter():
        winner, value = yield sim.any_of([early, sim.timeout(5.0)])
        got.append((sim.now, value, winner is early))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "early", True)]


def test_all_of_with_prefired_child_still_waits_for_the_rest():
    sim = Simulator()
    first = sim.signal()
    first.fire("a")
    got = []

    def waiter():
        values = yield sim.all_of([first, sim.timeout(1.0, "b")])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1.0, ["a", "b"])]


def test_all_of_empty_fires_with_empty_list():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, [])]


# ----------------------------------------------------------------------
# Interrupts racing fires
# ----------------------------------------------------------------------
def test_interrupt_racing_fire_at_same_instant_delivers_interrupt():
    """Interrupt and timeout expiry land on the same instant; the
    interrupt discards the waiter (tombstone) before the expiry runs,
    so the expiry wakes nobody and the interrupt is what arrives."""
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(1.0)
            trace.append("timeout")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, "race")
    sim.run()
    assert trace == [("interrupted", 1.0, "race")]


def test_self_interrupt_during_execution_is_delivered_at_next_yield():
    """An interrupt raced in while the generator was executing (here:
    the process interrupts itself) pre-empts the wait it just set up."""
    sim = Simulator()
    trace = []
    holder = []

    def body():
        yield sim.timeout(1.0)
        holder[0].interrupt("self")
        try:
            yield sim.timeout(10.0)
        except Interrupt as interrupt:
            trace.append((sim.now, interrupt.cause))

    holder.append(sim.spawn(body()))
    sim.run()
    assert trace == [(1.0, "self")]
    # The abandoned 10 s timeout still expires (harmlessly) at t=11.
    assert sim.now == 11.0


# ----------------------------------------------------------------------
# Tombstoned waiter discard
# ----------------------------------------------------------------------
def _block_on(sig, order, tag):
    value = yield sig
    order.append((tag, value))


def test_discarded_waiters_leave_wake_order_untouched():
    sim = Simulator()
    sig = sim.signal()
    order = []
    procs = [sim.spawn(_block_on(sig, order, tag), name=f"w{tag}")
             for tag in range(10)]
    sim.run()  # everyone blocks on the signal
    for tag in (2, 5, 7):
        procs[tag].interrupt("drop")
    sim.schedule(1.0, sig.fire, "go")
    sim.run()
    assert order == [(tag, "go") for tag in (0, 1, 3, 4, 6, 8, 9)]


def test_heavily_tombstoned_waiter_list_compacts_and_wakes_in_order():
    sim = Simulator()
    sig = sim.signal()
    order = []
    procs = [sim.spawn(_block_on(sig, order, tag), name=f"w{tag}")
             for tag in range(100)]
    sim.run()
    survivors = [tag for tag in range(100) if tag % 3 == 0]
    for tag in range(100):
        if tag % 3 != 0:
            procs[tag].interrupt("drop")
    # Two thirds discarded: the compaction threshold has tripped and
    # shrunk the list.  (Discards after the last compaction may have
    # left fresh tombstones; live entries must still self-index.)
    assert len(sig._waiters) < 100
    assert all(entry is None or sig._waiters[entry._wait_index] is entry
               for entry in sig._waiters)
    sim.schedule(1.0, sig.fire, "go")
    sim.run()
    assert order == [(tag, "go") for tag in survivors]


# ----------------------------------------------------------------------
# Non-Waitable yields: throw, catch-and-return, catch-and-rewait
# ----------------------------------------------------------------------
def test_non_waitable_yield_uncaught_propagates():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_non_waitable_yield_caught_and_return_fires_process():
    """A generator that catches the misuse error and returns must fire
    with its return value instead of leaking StopIteration into the
    event loop."""
    sim = Simulator()

    def tolerant():
        try:
            yield 42
        except SimulationError:
            return "recovered"

    proc = sim.spawn(tolerant())
    sim.run()
    assert proc.fired
    assert proc.value == "recovered"


def test_non_waitable_yield_caught_then_valid_wait_resumes():
    sim = Simulator()

    def tolerant():
        try:
            yield "nonsense"
        except SimulationError:
            value = yield sim.timeout(1.0, "ok")
            return value

    proc = sim.spawn(tolerant())
    sim.run()
    assert proc.value == "ok"
    assert sim.now == 1.0


def test_non_waitable_yield_repeated_misuse_throws_each_time():
    sim = Simulator()

    def stubborn():
        try:
            yield 1
        except SimulationError:
            try:
                yield 2
            except SimulationError:
                return "twice"

    proc = sim.spawn(stubborn())
    sim.run()
    assert proc.value == "twice"


# ----------------------------------------------------------------------
# Zero-delay ready lane vs the heap
# ----------------------------------------------------------------------
def test_zero_delay_events_merge_with_heap_events_in_seq_order():
    """A same-instant heap event scheduled *before* a zero-delay event
    must still run first: the two lanes merge on (when, seq)."""
    sim = Simulator()
    order = []

    def at_one():
        order.append("first")
        sim.schedule(0.0, order.append, "zero-delay")

    sim.schedule(1.0, at_one)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "zero-delay"]


def test_callback_exception_preserves_pending_zero_delay_events():
    """An exception escaping ``run()`` must not strand events pushed
    onto the ready lane — a later run still executes them."""
    sim = Simulator()
    order = []

    def boom():
        sim.schedule(0.0, order.append, "after")
        raise RuntimeError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    sim.run()
    assert order == ["after"]


def test_run_until_in_the_past_rewinds_clock_like_reference():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    sim.schedule(5.0, lambda: None)
    ref = reference_mod.Simulator()
    ref.schedule(1.0, lambda: None)
    ref.run()
    ref.schedule(5.0, lambda: None)
    assert sim.run(until=0.5) == ref.run(until=0.5) == 0.5


# ----------------------------------------------------------------------
# Event-kind profiler
# ----------------------------------------------------------------------
def _profiled_program(profile):
    sim = Simulator(profile=profile)

    def worker(idx):
        for __ in range(5):
            yield sim.timeout(0.5 + idx * 0.25)

    for idx in range(4):
        sim.spawn(worker(idx), name=f"worker-{idx}")
    sim.run()
    return sim


def test_profiler_is_off_by_default():
    sim = Simulator()
    assert sim.profile is None


def test_profiler_is_observationally_inert():
    """profile=True reads clocks but schedules nothing: the trace
    fingerprint is byte-identical with the profiler on and off."""
    base = _profiled_program(False)
    profiled = _profiled_program(True)
    assert base.profile is None
    assert profiled.profile is not None
    assert profiled.fingerprint() == base.fingerprint()
    assert profiled.profile.events == profiled.digest.events > 0


def test_profiler_breaks_down_by_event_kind():
    profiled = _profiled_program(True)
    report = profiled.profile.as_dict()
    kinds = report["kinds"]
    assert "Timeout._expire" in kinds
    assert "Process._resume" in kinds
    assert report["events"] == sum(k["calls"] for k in kinds.values())
    assert abs(sum(k["share"] for k in kinds.values()) - 1.0) < 1e-9
    ranked = profiled.profile.top(2)
    assert len(ranked) == 2
    totals = [record.total_ms for record in ranked.values()]
    assert totals == sorted(totals, reverse=True)


def test_profiler_works_with_digest_disabled():
    sim = Simulator(digest=False, profile=True)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.fingerprint() is None
    assert sim.profile.events == 1

# ----------------------------------------------------------------------
# Calendar-wheel structure: resize, storms, cancellation, merge order.
# Every scenario is mirrored against the reference heap kernel — the
# wheel's bucket policy is free only because the (when, seq) stream it
# emits is byte-identical to the witness.
# ----------------------------------------------------------------------
_WHEEL_BACKED = kernel_mod.active_backend() != "reference"


def _logged_run(mod, build):
    """Run ``build(sim, log)`` on ``mod``'s simulator; return
    (log, fingerprint, sim)."""
    sim = mod.Simulator()
    log = []
    build(sim, log)
    sim.run()
    return log, sim.fingerprint(), sim


def test_far_future_timers_resize_the_ring_and_match_reference():
    """Enough spread-out timers to blow the grow threshold: the ring
    rebuilds (more buckets, re-estimated width) mid-stream and the
    event order never deviates from the reference heap."""
    def build(sim, log):
        rng = random.Random(20260808)
        # Spread across five decades so the rebuild's width
        # re-estimation actually moves, including far-future slots
        # that start life in the overflow heap.
        for idx in range(4000):
            delay = rng.choice((rng.uniform(0.0001, 0.01),
                                rng.uniform(0.01, 1.0),
                                rng.uniform(1.0, 100.0),
                                rng.uniform(100.0, 5000.0)))
            sim.schedule(delay, log.append, (round(delay, 9), idx))

    opt_log, opt_fp, opt_sim = _logged_run(kernel_mod, build)
    ref_log, ref_fp, __ = _logged_run(reference_mod, build)
    assert opt_log == ref_log
    assert opt_fp == ref_fp
    if _WHEEL_BACKED:
        stats = opt_sim.wheel_stats()
        assert stats["resizes"] >= 1, \
            "4000 pending timers never grew a 256-bucket ring"
        assert stats["nbuckets"] > 256


def test_overflow_timers_spill_lazily_and_match_reference():
    """Far-future timers beyond the ring horizon start life in the
    overflow heap and re-bucket only as the head approaches — few
    enough pending that no rebuild widens the ring under them."""
    def build(sim, log):
        for idx in range(40):
            sim.schedule(0.01 * (idx + 1), log.append, ("near", idx))
        for idx in range(8):
            sim.schedule(10.0 + 3.0 * idx, log.append, ("far", idx))

    opt_log, opt_fp, opt_sim = _logged_run(kernel_mod, build)
    ref_log, ref_fp, __ = _logged_run(reference_mod, build)
    assert opt_log == ref_log
    assert opt_fp == ref_fp
    if _WHEEL_BACKED:
        stats = opt_sim.wheel_stats()
        assert stats["resizes"] == 0
        assert stats["spills"] >= 8, \
            "10s+ timers never crossed the 0.5s overflow horizon"


def test_mass_same_tick_storm_batch_loop_and_reference_identical():
    """One schedule_batch per storm, a schedule() loop, and the
    reference heap: three byte-identical (when, seq) streams."""
    def build_loop(mod):
        sim = mod.Simulator()
        log = []
        for storm in range(40):
            when = 0.01 * (storm + 1)
            for idx in range(50):
                sim.schedule(when, log.append, (storm, idx))
        sim.run()
        return log, sim.fingerprint()

    def build_batch():
        sim = Simulator()
        log = []
        for storm in range(40):
            when = 0.01 * (storm + 1)
            sim.schedule_batch(
                [(when, log.append, ((storm, idx),))
                 for idx in range(50)])
        sim.run()
        return log, sim.fingerprint()

    loop_log, loop_fp = build_loop(kernel_mod)
    ref_log, ref_fp = build_loop(reference_mod)
    batch_log, batch_fp = build_batch()
    assert loop_log == ref_log == batch_log
    assert loop_fp == ref_fp == batch_fp


def test_cancelled_timers_across_buckets_match_reference():
    """AnyOf losers spread over many buckets: cancellation tombstones
    the waiter, but the timer event still fires and folds into the
    digest in exactly the reference order."""
    def build(sim, log):
        def racer(idx):
            winner, value = yield sim.any_of(
                [sim.timeout(0.001 * (idx % 7 + 1), "fast"),
                 sim.timeout(0.05 * (idx + 1), "slow")])
            log.append((round(sim.now, 9), idx, value))
        for idx in range(200):
            sim.spawn(racer(idx), name=f"racer-{idx}")

    opt_log, opt_fp, __ = _logged_run(kernel_mod, build)
    ref_log, ref_fp, __ = _logged_run(reference_mod, build)
    assert opt_log == ref_log
    assert opt_fp == ref_fp


def test_wheel_and_ready_lane_merge_in_global_seq_order():
    """Zero-delay wakeups racing bucketed timers at the same instant:
    the ready fast lane must interleave by (when, seq), not lane."""
    def build(sim, log):
        def at_instant(tag):
            # From inside a callback: a zero-delay event (ready lane)
            # scheduled AFTER a same-instant timer (bucket/near) has a
            # larger seq, so the timer must still fire first.
            sim.schedule(0.0, log.append, (round(sim.now, 9), tag, "zero"))
            sim.schedule(0.0, log.append, (round(sim.now, 9), tag, "zero2"))
        for tick in range(100):
            when = 0.005 * (tick + 1)
            sim.schedule(when, at_instant, tick)
            sim.schedule(when, log.append, (round(when, 9), tick, "timer"))

    opt_log, opt_fp, __ = _logged_run(kernel_mod, build)
    ref_log, ref_fp, __ = _logged_run(reference_mod, build)
    assert opt_log == ref_log
    assert opt_fp == ref_fp


def test_until_stop_mid_bucket_resumes_identically():
    """run(until) landing between two events of one bucket: the
    half-consumed bucket persists across run() calls and the resumed
    stream matches a reference run stopped at the same instants."""
    def build(mod):
        sim = mod.Simulator()
        log = []
        rng = random.Random(7)
        for idx in range(300):
            sim.schedule(rng.uniform(0.0, 2.0), log.append, idx)
        return sim, log

    opt_sim, opt_log = build(kernel_mod)
    ref_sim, ref_log = build(reference_mod)
    for stop in (0.2505, 0.2506, 1.0001, 1.5):
        assert opt_sim.run(until=stop) == ref_sim.run(until=stop)
        assert opt_log == ref_log
    opt_sim.run()
    ref_sim.run()
    assert opt_log == ref_log
    assert len(opt_log) == 300
    assert opt_sim.fingerprint() == ref_sim.fingerprint()


def test_schedule_batch_absolute_mode_matches_relative():
    sim_abs = Simulator()
    sim_rel = Simulator()
    log_abs = []
    log_rel = []
    whens = [0.25, 0.25, 0.5, 0.75, 0.75, 0.75]
    sim_abs.schedule_batch(
        [(when, log_abs.append, (idx,))
         for idx, when in enumerate(whens)], absolute=True)
    sim_rel.schedule_batch(
        [(when, log_rel.append, (idx,))
         for idx, when in enumerate(whens)])
    sim_abs.run()
    sim_rel.run()
    assert log_abs == log_rel == list(range(len(whens)))
    assert sim_abs.fingerprint() == sim_rel.fingerprint()


def test_schedule_batch_rejects_past_and_negative_like_schedule():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(SimulationError):
        sim.schedule_batch([(0.5, lambda: None, ())], absolute=True)
    with pytest.raises(SimulationError):
        sim.schedule_batch([(-0.1, lambda: None, ())])


def test_schedule_batch_partial_insert_matches_schedule_loop():
    """An item that raises mid-batch leaves the earlier items
    scheduled — the exact semantics of an equivalent schedule() loop
    that raises at the same position."""
    def build(use_batch):
        sim = Simulator()
        log = []
        items = [(0.1, log.append, (0,)), (0.2, log.append, (1,)),
                 (-1.0, log.append, (2,)), (0.3, log.append, (3,))]
        with pytest.raises(SimulationError):
            if use_batch:
                sim.schedule_batch(items)
            else:
                for delay, callback, args in items:
                    sim.schedule(delay, callback, *args)
        sim.run()
        return log, sim.fingerprint()

    batch_log, batch_fp = build(True)
    loop_log, loop_fp = build(False)
    assert batch_log == loop_log == [0, 1]
    assert batch_fp == loop_fp


@pytest.mark.skipif(not _WHEEL_BACKED,
                    reason="reference backend exposes no wheel stats")
def test_wheel_stats_are_digest_inert_and_populated():
    def program(read_stats):
        sim = Simulator()
        for idx in range(600):
            sim.schedule(0.001 * (idx % 97 + 1) + idx, lambda: None)
        if read_stats:
            sim.wheel_stats()
        sim.run()
        return sim

    plain = program(False)
    probed = program(True)
    assert plain.fingerprint() == probed.fingerprint()
    stats = probed.wheel_stats()
    for key in ("nbuckets", "width_s", "head_slot", "pending_buckets",
                "pending_near", "pending_overflow", "resizes",
                "spills", "activations", "occupancy"):
        assert key in stats
    assert stats["activations"] >= 1
    assert sum(stats["occupancy"].values()) == stats["activations"]


@pytest.mark.skipif(not _WHEEL_BACKED,
                    reason="reference backend exposes no wheel stats")
def test_profile_report_includes_wheel_section():
    sim = Simulator(profile=True)
    sim.schedule(0.5, lambda: None)
    sim.run()
    report = sim.profile.as_dict()
    assert "wheel" in report
    assert report["wheel"]["activations"] >= 1
