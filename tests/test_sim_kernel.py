"""Unit tests for the discrete-event kernel."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import (
    AnyOf,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_schedule_orders_by_time():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("x", "y", "z"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["x", "y", "z"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, True)
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [True]


def test_process_timeout_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.5)
        trace.append(("mid", sim.now))
        yield sim.timeout(0.5)
        trace.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield sim.timeout(1.0)
        return 42

    def waiter():
        value = yield sim.spawn(worker())
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert results == [(1.0, 42)]


def test_signal_delivers_value():
    sim = Simulator()
    signal = sim.signal()
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    def firer():
        yield sim.timeout(2.0)
        signal.fire("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["payload"]


def test_signal_fire_twice_raises():
    sim = Simulator()
    signal = sim.signal()
    signal.fire(1)
    with pytest.raises(SimulationError):
        signal.fire(2)


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    signal = sim.signal()
    signal.fire("early")
    got = []

    def waiter():
        value = yield signal
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_any_of_returns_winner():
    sim = Simulator()
    got = []

    def waiter():
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        winner, value = yield sim.any_of([fast, slow])
        got.append((sim.now, value, winner is fast))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1.0, "fast", True)]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_all_of_collects_values():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(2.0, ["a", "b"])]


def test_interrupt_raises_in_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt("wake")

    sim.spawn(interrupter())
    sim.run()
    assert trace == [("interrupted", 3.0, "wake")]


def test_interrupted_process_ignores_stale_wakeup():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            trace.append("timeout-fired")
        except Interrupt:
            trace.append("interrupted")
            yield sim.timeout(10.0)
            trace.append("second-sleep-done")

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, None)
    sim.run()
    # The original 5 s timeout must not resume the process spuriously.
    assert trace == ["interrupted", "second-sleep-done"]
    assert sim.now == 11.0


def test_unhandled_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, "bye")
    sim.run()
    assert proc.fired
    assert proc.value == "bye"


def test_interrupt_after_death_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value is None


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_nested_process_spawning():
    sim = Simulator()
    order = []

    def child(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)
        return tag

    def parent():
        first = yield sim.spawn(child("one", 1.0))
        second = yield sim.spawn(child("two", 1.0))
        order.append((first, second, sim.now))

    sim.spawn(parent())
    sim.run()
    assert order == ["one", "two", ("one", "two", 2.0)]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def evil():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    sim.schedule(1.0, evil)
    sim.run()
    assert errors and "re-entrant" in errors[0]


# ----------------------------------------------------------------------
# Trace digest
# ----------------------------------------------------------------------
def test_trace_digest_identical_for_identical_programs():
    def run_once():
        sim = Simulator()

        def proc():
            yield sim.timeout(1.5)
            yield sim.timeout(0.5)

        sim.spawn(proc())
        sim.run()
        return sim.fingerprint(), sim.digest.events

    first, second = run_once(), run_once()
    assert first == second
    assert first[1] > 0


def test_trace_digest_differs_when_trajectory_differs():
    def run_once(delay):
        sim = Simulator()
        sim.schedule(delay, lambda: None)
        sim.run()
        return sim.fingerprint()

    assert run_once(1.0) != run_once(2.0)


def test_trace_digest_can_be_disabled():
    sim = Simulator(digest=False)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.fingerprint() is None
    assert sim.digest is None


# ----------------------------------------------------------------------
# Property-based: random waitable-DAG programs
# ----------------------------------------------------------------------
#
# A seeded generator builds an arbitrary program out of Timeout /
# Signal / AnyOf / AllOf / child-process joins / interrupts, runs it,
# and records every completion.  Invariants checked on every program:
# replay stability (identical log and digest on a fresh simulator), no
# double-resume (each (process, step) completes exactly once), no
# double-fire (the kernel would raise SimulationError), and quiescence
# (every process terminates — each waitable is bounded by a timeout or
# a firer).

def _random_program(seed):
    """Build and run one random program; return (log, fingerprint)."""
    sim = Simulator()
    rng = random.Random(seed)
    log = []
    signals = [sim.signal() for __ in range(rng.randint(1, 3))]

    def body(pid, depth):
        for step in range(rng.randint(1, 4)):
            try:
                roll = rng.random()
                if roll < 0.35 or depth >= 2:
                    value = yield sim.timeout(
                        rng.randrange(0, 300) / 100.0, ("t", step))
                elif roll < 0.50:
                    winner, value = yield sim.any_of(
                        [rng.choice(signals),
                         sim.timeout(rng.randrange(1, 250) / 100.0,
                                     "deadline")])
                elif roll < 0.65:
                    value = yield sim.all_of(
                        [sim.timeout(rng.randrange(0, 150) / 100.0),
                         sim.timeout(rng.randrange(0, 150) / 100.0)])
                elif roll < 0.85:
                    value = yield sim.spawn(
                        body(f"{pid}.{step}", depth + 1),
                        name=f"{pid}.{step}")
                else:
                    value = yield sim.timeout(
                        rng.randrange(50, 400) / 100.0)
            except Interrupt as interrupt:
                log.append((round(sim.now, 9), pid, step,
                            "interrupted", str(interrupt.cause)))
                continue
            log.append((round(sim.now, 9), pid, step, "done",
                        repr(value)))

    roots = [sim.spawn(body(f"p{index}", 0), name=f"p{index}")
             for index in range(rng.randint(2, 5))]

    def firer(index, sig, delay):
        yield sim.timeout(delay)
        if not sig.fired:
            sig.fire(("sig", index))

    for index, sig in enumerate(signals):
        sim.spawn(firer(index, sig, rng.randrange(1, 400) / 100.0),
                  name=f"firer-{index}")

    def interrupter(target, delay, cause):
        yield sim.timeout(delay)
        target.interrupt(cause)

    for count in range(rng.randint(0, 3)):
        sim.spawn(interrupter(rng.choice(roots),
                              rng.randrange(0, 350) / 100.0,
                              f"intr-{count}"),
                  name=f"interrupter-{count}")

    sim.run()
    assert all(proc.fired for proc in roots), "program did not quiesce"
    return log, sim.fingerprint()


PROPERTY = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_replay_identically(seed):
    first_log, first_digest = _random_program(seed)
    second_log, second_digest = _random_program(seed)
    assert first_log == second_log
    assert first_digest == second_digest


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_never_double_resume(seed):
    log, __ = _random_program(seed)
    completions = [(pid, step) for __t, pid, step, *__rest in log]
    assert len(completions) == len(set(completions)), \
        "a (process, step) completed twice — double resume"


@PROPERTY
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_programs_log_in_time_order(seed):
    log, __ = _random_program(seed)
    times = [entry[0] for entry in log]
    assert times == sorted(times)
