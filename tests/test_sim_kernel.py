"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AnyOf,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_schedule_orders_by_time():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("x", "y", "z"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["x", "y", "z"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, True)
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [True]


def test_process_timeout_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.5)
        trace.append(("mid", sim.now))
        yield sim.timeout(0.5)
        trace.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker():
        yield sim.timeout(1.0)
        return 42

    def waiter():
        value = yield sim.spawn(worker())
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert results == [(1.0, 42)]


def test_signal_delivers_value():
    sim = Simulator()
    signal = sim.signal()
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    def firer():
        yield sim.timeout(2.0)
        signal.fire("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["payload"]


def test_signal_fire_twice_raises():
    sim = Simulator()
    signal = sim.signal()
    signal.fire(1)
    with pytest.raises(SimulationError):
        signal.fire(2)


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    signal = sim.signal()
    signal.fire("early")
    got = []

    def waiter():
        value = yield signal
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_any_of_returns_winner():
    sim = Simulator()
    got = []

    def waiter():
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        winner, value = yield sim.any_of([fast, slow])
        got.append((sim.now, value, winner is fast))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1.0, "fast", True)]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_all_of_collects_values():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(2.0, ["a", "b"])]


def test_interrupt_raises_in_process():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt("wake")

    sim.spawn(interrupter())
    sim.run()
    assert trace == [("interrupted", 3.0, "wake")]


def test_interrupted_process_ignores_stale_wakeup():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            trace.append("timeout-fired")
        except Interrupt:
            trace.append("interrupted")
            yield sim.timeout(10.0)
            trace.append("second-sleep-done")

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, None)
    sim.run()
    # The original 5 s timeout must not resume the process spuriously.
    assert trace == ["interrupted", "second-sleep-done"]
    assert sim.now == 11.0


def test_unhandled_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt, "bye")
    sim.run()
    assert proc.fired
    assert proc.value == "bye"


def test_interrupt_after_death_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value is None


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_nested_process_spawning():
    sim = Simulator()
    order = []

    def child(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)
        return tag

    def parent():
        first = yield sim.spawn(child("one", 1.0))
        second = yield sim.spawn(child("two", 1.0))
        order.append((first, second, sim.now))

    sim.spawn(parent())
    sim.run()
    assert order == ["one", "two", ("one", "two", 2.0)]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def evil():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    sim.schedule(1.0, evil)
    sim.run()
    assert errors and "re-entrant" in errors[0]
