"""The cohort ≡ micro equivalence contract, pinned.

Three layers of proof that the cohort machinery cannot silently
perturb microscopic results:

* **all-tracer equivalence** — a cohort of size N with N tracers has
  zero macro members; the engine must spawn no events and draw no RNG,
  so the run is *bit-identical* (trace digest, per-client QoS, flow
  ledgers) to the plain scAtteR++ run with the same arguments;
* **golden digests with cohorts off** — the committed determinism
  golden file must still hold, serial and sharded (workers 0 and 4):
  merely importing/registering the cohort subsystem must not move any
  existing trajectory;
* **hybrid determinism** — with macro members the run walks its own
  trajectory, but the same seed reproduces it exactly, cohort ledger
  included, and conservation holds.
"""

import json

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.runner import (run_cohort_experiment,
                                      run_scatterpp_experiment)
from repro.experiments.store import summarize_result
from repro.flow import default_flow_config
from repro.scatter.config import baseline_configs
from tests.test_determinism import (CONTRACT_CAMPAIGN, GOLDEN_PATH,
                                    _digest_map)

PLACEMENT = baseline_configs()["C1"]
DURATION_S = 2.0


def micro_run(*, flow, seed=0, clients=2):
    return run_scatterpp_experiment(
        PLACEMENT, num_clients=clients, duration_s=DURATION_S,
        seed=seed, flow=flow)


def all_tracer_run(*, flow, seed=0, clients=2):
    return run_cohort_experiment(
        PLACEMENT, cohort_size=clients, tracers=clients,
        duration_s=DURATION_S, seed=seed, flow=flow)


# ----------------------------------------------------------------------
# All-tracer cohort == plain microscopic run, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flow_on", [False, True],
                         ids=["flow-off", "flow-on"])
def test_all_tracer_cohort_is_bit_identical_to_micro(flow_on):
    flow = default_flow_config() if flow_on else None
    micro = micro_run(flow=flow)
    cohort = all_tracer_run(flow=flow)
    # Same event trajectory: the macro layer was provably inert.
    assert cohort.trace_digest == micro.trace_digest
    # Same QoS, compared exactly — no tolerance.
    assert cohort.per_client_fps() == micro.per_client_fps()
    assert [c.e2e_latencies_s for c in cohort.clients] == \
        [c.e2e_latencies_s for c in micro.clients]
    assert cohort.success_rate() == micro.success_rate()
    if flow_on:
        assert cohort.flow["services"] == micro.flow["services"]


def test_all_tracer_summary_matches_micro_summary():
    """The store-level view agrees too — everything except the cohort
    block (absent from micro runs) is identical."""
    flow = default_flow_config()
    micro = summarize_result(micro_run(flow=flow))
    cohort = summarize_result(all_tracer_run(flow=flow))
    macro_block = cohort.pop("cohort")
    micro_block = micro.pop("cohort")
    assert micro_block is None
    assert cohort == micro
    # The macro layer reports itself inert: nothing offered, nothing
    # served, ledger balanced at zero.
    assert macro_block["spec"]["macro_members"] == 0
    assert macro_block["ledger"]["offered"] == 0
    assert macro_block["ledger"]["balance"] == 0
    assert macro_block["latency_ms"]["count"] == 0


def test_all_tracer_cohort_matches_across_seeds():
    for seed in (1, 7):
        micro = micro_run(flow=None, seed=seed)
        cohort = all_tracer_run(flow=None, seed=seed)
        assert cohort.trace_digest == micro.trace_digest


# ----------------------------------------------------------------------
# Cohort-off golden digests, serial and sharded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 4],
                         ids=["serial", "4-workers"])
def test_cohort_off_campaign_matches_golden_digests(workers):
    report = run_campaign(CONTRACT_CAMPAIGN, workers=workers)
    assert not report.failures
    golden = json.loads(GOLDEN_PATH.read_text())
    assert _digest_map(report) == golden["digests"], (
        "Cohort-off campaign digests drifted from the committed "
        "golden file: the cohort subsystem has perturbed existing "
        "trajectories.")


# ----------------------------------------------------------------------
# Hybrid runs: deterministic per seed, conservation holds
# ----------------------------------------------------------------------
def hybrid_run(seed=0, load="constant"):
    return run_cohort_experiment(
        PLACEMENT, cohort_size=500, tracers=2,
        duration_s=DURATION_S, seed=seed,
        flow=default_flow_config(), load=load)


def test_hybrid_run_is_deterministic_per_seed():
    first = hybrid_run(seed=0)
    second = hybrid_run(seed=0)
    assert first.trace_digest == second.trace_digest
    assert first.cohort == second.cohort
    assert first.per_client_fps() == second.per_client_fps()


def test_hybrid_poisson_load_is_deterministic_per_seed():
    first = hybrid_run(seed=3, load="poisson")
    second = hybrid_run(seed=3, load="poisson")
    assert first.cohort == second.cohort
    assert first.trace_digest == second.trace_digest
    # A different seed draws a different arrival sample path.
    other = hybrid_run(seed=4, load="poisson")
    assert other.cohort["ledger"] != first.cohort["ledger"]


def test_hybrid_ledger_balances_and_meters_to_capacity():
    result = hybrid_run(seed=0)
    ledger = result.cohort["ledger"]
    assert ledger["balance"] == 0
    assert ledger["offered"] > 0
    assert ledger["served"] > 0
    # The macro layer cannot out-serve the modeled bottleneck.
    assert result.cohort["served_fps"] <= \
        result.cohort["bottleneck_capacity_fps"] + 1.0


def test_tracer_qos_unaffected_by_macro_bookkeeping_scale():
    """Tracers contend with macro load through real credits, so their
    QoS differs from a no-cohort run — but the *size* of the macro
    bookkeeping must not matter beyond the load it represents: equal
    macro populations at different spec sizes behave identically when
    the load process offers the same frames."""
    small = run_cohort_experiment(
        PLACEMENT, cohort_size=302, tracers=2,
        duration_s=DURATION_S, seed=0, flow=default_flow_config())
    again = run_cohort_experiment(
        PLACEMENT, cohort_size=302, tracers=2,
        duration_s=DURATION_S, seed=0, flow=default_flow_config())
    assert small.trace_digest == again.trace_digest
    assert small.cohort == again.cohort
