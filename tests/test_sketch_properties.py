"""Property suite for the mergeable percentile sketch.

Pins the four contracts city-scale cohort runs lean on:

* **merge algebra** — bucket-count addition is commutative and (absent
  the ``max_bins`` collapse) associative, and merging never loses a
  sample: exact ``total``/``count``/``sum``/extrema are preserved;
* **quantile error** — every estimate is within the documented
  ``alpha`` relative error of the true order statistic at rank
  ``floor(q/100 * (count-1))`` of the exactly sorted input (plus the
  ``min_magnitude`` absolute floor for near-zero values);
* **constant memory** — a million inserts occupy no more bucket state
  than the dynamic range dictates, hard-capped by ``max_bins``;
* **serialization** — ``to_dict``/``from_dict`` round-trips through
  JSON and across a real process boundary, and a sketch that traveled
  keeps merging losslessly.

All hypothesis tests run derandomized: the suite is part of tier-1 and
must never flake.
"""

import json
import math
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.sketch import (DEFAULT_MIN_MAGNITUDE,
                                  PercentileSketch, merge_sketches)

#: Finite samples spanning signs and ~12 orders of magnitude — wide
#: enough to exercise many buckets, narrow enough to never trigger
#: the max_bins collapse (so associativity is exact).
samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)

quantiles = st.floats(min_value=0.0, max_value=100.0)


def sketch_of(values, **kwargs):
    sketch = PercentileSketch(**kwargs)
    sketch.extend(values)
    return sketch


def assert_same_population(left, right):
    """Identical bucket state; ``sum`` only up to float re-association
    (addition order differs between merge orders, bitwise equality
    does not survive — everything else must match exactly)."""
    left_payload, right_payload = left.to_dict(), right.to_dict()
    left_sum = left_payload.pop("sum")
    right_sum = right_payload.pop("sum")
    assert left_payload == right_payload
    assert left_sum == pytest.approx(right_sum, rel=1e-12, abs=1e-300)


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------
@settings(max_examples=30, derandomize=True, deadline=None)
@given(samples, samples)
def test_merge_commutes(left_values, right_values):
    left, right = sketch_of(left_values), sketch_of(right_values)
    assert left.merge(right) == right.merge(left)


@settings(max_examples=30, derandomize=True, deadline=None)
@given(samples, samples, samples)
def test_merge_associates(a_values, b_values, c_values):
    a, b, c = (sketch_of(values) for values
               in (a_values, b_values, c_values))
    assert_same_population(a.merge(b).merge(c), a.merge(b.merge(c)))


@settings(max_examples=30, derandomize=True, deadline=None)
@given(samples, samples)
def test_merge_loses_nothing_exact(left_values, right_values):
    merged = sketch_of(left_values).merge(sketch_of(right_values))
    both = left_values + right_values
    assert merged.total == len(both)
    assert merged.count == len(both)
    assert merged.sum == pytest.approx(sum(both))
    assert merged.minimum == min(both)
    assert merged.maximum == max(both)
    # ... and equals sketching the concatenation directly.
    assert_same_population(merged, sketch_of(both))


@settings(max_examples=20, derandomize=True, deadline=None)
@given(samples)
def test_merge_with_empty_is_identity(values):
    sketch = sketch_of(values)
    assert sketch.merge(PercentileSketch()) == sketch
    assert PercentileSketch().merge(sketch) == sketch


def test_merge_rejects_mismatched_parameters():
    with pytest.raises(ValueError):
        PercentileSketch(alpha=0.01).merge(PercentileSketch(alpha=0.02))
    assert merge_sketches([]) is None


# ----------------------------------------------------------------------
# Quantile error bound
# ----------------------------------------------------------------------
def assert_quantiles_within_bound(values, sketch):
    """Every estimate within alpha relative error of the true order
    statistic at the documented rank (plus the near-zero floor)."""
    ordered = sorted(values)
    for q in (0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0):
        exact = ordered[math.floor(q / 100.0 * (len(ordered) - 1))]
        estimate = sketch.quantile(q)
        bound = sketch.alpha * abs(exact) + sketch.min_magnitude
        assert abs(estimate - exact) <= bound, (
            f"q={q}: estimate {estimate} vs exact {exact} "
            f"(bound {bound})")


@settings(max_examples=50, derandomize=True, deadline=None)
@given(samples)
def test_quantile_error_within_documented_bound(values):
    assert_quantiles_within_bound(values, sketch_of(values))


def test_quantile_error_on_heavy_tailed_bulk():
    """The realistic shape: 100k lognormal latencies, dense checks."""
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=-3.0, sigma=1.0, size=100_000)
    sketch = sketch_of(values)
    ordered = np.sort(values)
    for q in np.linspace(0.0, 100.0, 41):
        exact = float(ordered[math.floor(q / 100.0
                                         * (len(ordered) - 1))])
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= sketch.alpha * exact + 1e-12


@settings(max_examples=20, derandomize=True, deadline=None)
@given(samples, quantiles)
def test_quantile_clamped_into_observed_range(values, q):
    sketch = sketch_of(values)
    estimate = sketch.quantile(q)
    assert min(values) <= estimate <= max(values)


def test_single_sample_answers_every_quantile_exactly():
    sketch = sketch_of([0.0371])
    for q in (0.0, 13.7, 50.0, 95.0, 100.0):
        assert sketch.quantile(q) == pytest.approx(0.0371, rel=1e-12)


def test_empty_sketch_has_no_quantiles():
    sketch = PercentileSketch()
    assert sketch.quantile(50.0) is None
    assert not sketch
    assert sketch.minimum is None and sketch.maximum is None
    with pytest.raises(ValueError):
        sketch.quantile(101.0)


# ----------------------------------------------------------------------
# Constant memory
# ----------------------------------------------------------------------
def test_million_inserts_stay_constant_memory():
    """10^6 samples over 6 decades of latency: bucket state grows with
    the dynamic range only, far below the max_bins hard cap."""
    rng = np.random.default_rng(11)
    sketch = PercentileSketch()
    bins_after_warmup = None
    for chunk in range(10):
        sketch.extend(rng.lognormal(mean=-3.0, sigma=1.5,
                                    size=100_000))
        if chunk == 0:
            bins_after_warmup = sketch.bin_count
    assert sketch.total == 1_000_000
    assert sketch.count == 1_000_000
    # Range-bounded, not count-bounded: 900k further samples from the
    # same distribution grow the bucket table only marginally.
    assert sketch.bin_count <= bins_after_warmup + 200
    assert sketch.bin_count <= sketch.max_bins
    assert sketch.overflow_ratio == 0.0
    # The serialized footprint is a few KB, not a million samples.
    assert len(json.dumps(sketch.to_dict())) < 64_000


def test_collapse_honors_max_bins_and_conserves_counts():
    sketch = PercentileSketch(alpha=0.05, max_bins=16)
    rng = np.random.default_rng(3)
    values = rng.lognormal(mean=0.0, sigma=8.0, size=20_000)
    sketch.extend(values)
    assert sketch.bin_count <= sketch.max_bins + 1  # +1 for zeros bin
    assert sketch.count == 20_000
    assert sketch.collapsed > 0
    # The alpha bound is gone for the collapsed head — and the sketch
    # says so: overflow_ratio reports exactly the affected fraction.
    assert sketch.overflow_ratio == pytest.approx(
        sketch.collapsed / sketch.count)
    # What survives a collapse: exact extrema, range clamping, and
    # quantile monotonicity.
    assert sketch.minimum == pytest.approx(float(values.min()))
    assert sketch.maximum == pytest.approx(float(values.max()))
    assert sketch.quantile(100.0) == pytest.approx(
        sketch.maximum, rel=sketch.alpha)
    estimates = [sketch.quantile(q) for q in np.linspace(0, 100, 21)]
    assert estimates == sorted(estimates)
    assert all(sketch.minimum <= e <= sketch.maximum
               for e in estimates)


# ----------------------------------------------------------------------
# Serialization across process boundaries
# ----------------------------------------------------------------------
def _extend_in_child(payload_json: str) -> str:
    """Worker entry: revive a sketch from JSON, add a shard, ship it
    back as JSON (module-level so it pickles under spawn too)."""
    sketch = PercentileSketch.from_dict(json.loads(payload_json))
    sketch.extend([0.010, 0.020, 0.030])
    return json.dumps(sketch.to_dict())


@settings(max_examples=30, derandomize=True, deadline=None)
@given(samples)
def test_json_round_trip_is_lossless(values):
    sketch = sketch_of(values)
    revived = PercentileSketch.from_dict(
        json.loads(json.dumps(sketch.to_dict())))
    assert revived == sketch
    assert revived.quantile(95.0) == sketch.quantile(95.0)
    assert revived.mean == sketch.mean


def test_round_trip_across_a_real_process_boundary():
    parent = sketch_of([0.040, 0.050, 0.060])
    with ProcessPoolExecutor(max_workers=1) as pool:
        shipped = pool.submit(_extend_in_child,
                              json.dumps(parent.to_dict())).result()
    child = PercentileSketch.from_dict(json.loads(shipped))
    assert child.count == 6
    assert child.minimum == pytest.approx(0.010)
    assert child.maximum == pytest.approx(0.060)
    # The traveled sketch still merges losslessly with a local one.
    local = sketch_of([0.070])
    merged = child.merge(local)
    assert merged.count == 7
    assert merged.maximum == pytest.approx(0.070)


def test_non_finite_accounting_survives_round_trip():
    sketch = PercentileSketch()
    sketch.extend([0.010, float("nan"), 0.020, float("inf")])
    revived = PercentileSketch.from_dict(sketch.to_dict())
    assert revived.total == 4
    assert revived.count == 2
    assert revived.skipped_nonfinite == 2
    assert revived == sketch


def test_empty_sketch_round_trips():
    revived = PercentileSketch.from_dict(
        json.loads(json.dumps(PercentileSketch().to_dict())))
    assert revived == PercentileSketch()
    assert revived.quantile(50.0) is None


def test_near_zero_values_bin_as_zero():
    sketch = sketch_of([DEFAULT_MIN_MAGNITUDE / 10.0, 0.0, -0.0])
    assert sketch.count == 3
    assert sketch.quantile(50.0) == pytest.approx(
        0.0, abs=DEFAULT_MIN_MAGNITUDE)
