"""Tests for the content-driven cost model."""

import numpy as np
import pytest

from repro.experiments.runner import run_scatter_experiment
from repro.scatter.config import PIPELINE_ORDER, baseline_configs
from repro.scatter.content import ContentCostModel
from repro.vision.video import SyntheticVideo


@pytest.fixture(scope="module")
def model():
    video = SyntheticVideo(seed=0)
    return ContentCostModel.from_video(video, sample_stride=30)


def test_multipliers_bounded_by_sensitivity(model):
    low, high = model.multiplier_range
    assert 0.75 <= low <= 1.0
    assert 1.0 <= high <= 1.25
    for frame in range(0, 300, 7):
        assert 0.75 <= model.multiplier(frame) <= 1.25


def test_multipliers_vary_with_content(model):
    values = {model.multiplier(frame) for frame in range(0, 300, 10)}
    assert len(values) > 3, "content variation should show up"


def test_multiplier_wraps_with_video_loop(model):
    assert model.multiplier(5) == model.multiplier(5 + model.period)


def test_frame_complexity_orders_textures():
    flat = np.full((64, 64), 0.5)
    rng = np.random.default_rng(0)
    busy = rng.random((64, 64))
    assert ContentCostModel.frame_complexity(busy) > \
        ContentCostModel.frame_complexity(flat)


def test_interpolation_between_samples():
    model = ContentCostModel({0: 0.0, 10: 1.0}, sensitivity=0.2)
    middle = model.multiplier(5)
    assert model.multiplier(0) < middle < model.multiplier(10)


def test_validation():
    with pytest.raises(ValueError):
        ContentCostModel({})
    with pytest.raises(ValueError):
        ContentCostModel({0: 1.0}, sensitivity=1.0)
    video = SyntheticVideo(seed=0)
    with pytest.raises(ValueError):
        ContentCostModel.from_video(video, sample_stride=0)


def test_experiment_with_content_model(model):
    """End to end: content-driven times widen the latency spread
    without breaking real-time service at one client."""
    kwargs = {"service_kwargs": {name: {"cost_model": model}
                                 for name in PIPELINE_ORDER}}
    flat = run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=1, duration_s=10.0)
    content = run_scatter_experiment(baseline_configs()["C1"],
                                     num_clients=1, duration_s=10.0,
                                     pipeline_kwargs=kwargs)
    assert content.mean_fps() >= 24.0
    # Mean E2E stays in the calibrated band...
    assert content.mean_e2e_ms() == pytest.approx(
        flat.mean_e2e_ms(), rel=0.15)
    # ...while per-frame latencies spread with frame content.
    flat_spread = np.std([lat for c in flat.clients
                          for lat in c.e2e_latencies_s])
    content_spread = np.std([lat for c in content.clients
                             for lat in c.e2e_latencies_s])
    assert content_spread > flat_spread
