"""Property-based conservation invariants across session handovers.

Hypothesis drives randomized (trajectory × fault schedule × flow
config) mobility runs and audits three ledgers after every one:

* **client conservation** — every admitted frame is served, degraded
  to the local fallback, paced, or lost-with-a-reason; any frame still
  unresolved at the horizon must be younger than the resilience
  layer's verdict budget (nothing silently vanishes);
* **state conservation** — every session entry that ever entered a
  store (stored by sift or imported in a handover) left through
  exactly one of fetch, expiry, handover discard, same-key
  replacement, or replica stop — audited over live *and* retired
  replicas;
* **sidecar conservation** — the flow ledgers balance exactly, across
  the replicas handovers deploy and retire mid-run.

Runs use ``derandomize=True`` (fixed CI budget, no shrink storms);
the schedule space still covers both handover modes, chaos racing the
transfer window, and flow control on/off.  The mobility-off
bit-identity pin lives in ``tests/test_determinism.py`` (golden
digests) — here we additionally pin that the *mobility runner itself*
is worker-count independent across the campaign's process boundary.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan, InstanceCrash
from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.runner import DRAIN_S, run_mobility_experiment
from repro.flow import (
    FlowConfig,
    check_client_conservation,
    check_result_conservation,
    check_state_conservation,
)
from repro.scatter.config import baseline_configs

PLACEMENT = baseline_configs()["C1"]
DURATION_S = 8.0

#: Outer bound on the resilience layer's verdict latency for one frame
#: (retry budget + breaker window + fallback) — anything unresolved and
#: older has silently vanished.
VERDICT_BUDGET_S = 3.0

SETTINGS = settings(max_examples=10, derandomize=True, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: Crashes aimed into (and around) the handover windows opened by the
#: 2-4 s dwell times below; sift crashes race the transfer itself.
FAULTS = st.one_of(
    st.none(),
    st.lists(st.tuples(st.sampled_from(["sift", "matching"]),
                       st.floats(min_value=0.25, max_value=0.85)),
             min_size=1, max_size=2))

FLOWS = st.one_of(
    st.none(),
    st.builds(FlowConfig,
              credits=st.booleans(),
              batch_max=st.sampled_from([1, 3])))


def _run_schedule(seed, num_clients, mean_dwell_s, naive, fault, flow):
    plan = None
    if fault is not None:
        plan = FaultPlan([InstanceCrash(at_s=frac * DURATION_S,
                                        service=service)
                          for service, frac in fault])
    return run_mobility_experiment(
        PLACEMENT, num_clients=num_clients, duration_s=DURATION_S,
        seed=seed, naive=naive, plan=plan, flow=flow,
        mean_dwell_s=mean_dwell_s, min_dwell_s=2.0)


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=5),
       num_clients=st.integers(min_value=1, max_value=2),
       mean_dwell_s=st.sampled_from([2.5, 4.0]),
       naive=st.booleans(),
       fault=FAULTS,
       flow=FLOWS)
def test_no_frame_vanishes_across_random_handover_schedules(
        seed, num_clients, mean_dwell_s, naive, fault, flow):
    result = _run_schedule(seed, num_clients, mean_dwell_s, naive,
                           fault, flow)
    now = DURATION_S + DRAIN_S

    # Every sidecar ledger balances, including replicas the handover
    # protocol deployed and the chaos/migration path retired.
    check_result_conservation(result)
    # Every session entry is accounted for, store by store.
    check_state_conservation(result)
    # Every admitted frame reached a verdict (or is younger than the
    # verdict budget).
    for stats in result.clients:
        check_client_conservation(stats, now=now,
                                  budget_s=VERDICT_BUDGET_S)

    # The protocol itself reached a terminal state for every handover
    # the horizon allowed to finish, and the outcome counts partition.
    report = result.mobility["report"]
    assert (report["completed"] + report["failed_over"]
            + report["abandoned"] + report["superseded"]
            + report["pending"]) == report["started"]
    # Stateful handovers lose entries only through a source crash;
    # naive ones lose exactly what they tore down.
    if not naive and fault is None:
        assert report["state_entries_lost"] == 0


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=7))
def test_loss_reasons_cover_every_lost_frame(seed):
    """`frames_lost` is never a bare number: each lost frame carries
    one reason, and the per-reason counts sum back to the total."""
    result = _run_schedule(seed, 2, 2.5, False,
                           [("sift", 0.5)], None)
    report = result.mobility["report"]
    assert sum(report["frames_lost_by_reason"].values()) == \
        report["frames_lost"]
    for stats in result.clients:
        assert sum(stats.lost_by_reason().values()) == stats.frames_lost


# ----------------------------------------------------------------------
# Worker-count independence (the determinism contract, mobility edition)
# ----------------------------------------------------------------------
MOBILITY_CAMPAIGN = Campaign(
    name="mobility-det", pipelines=("mobility",),
    placements=("C1",), client_counts=(2,), duration_s=3.0,
    seeds=(0, 1))


def test_mobility_campaign_workers_bit_identical():
    """Mobility cells shard across processes bit-for-bit: same trace
    digests, same metrics, same per-handover records in the summary."""
    serial = run_campaign(MOBILITY_CAMPAIGN)
    sharded = run_campaign(MOBILITY_CAMPAIGN, workers=4)
    assert not serial.failures and not sharded.failures
    assert serial.digests == sharded.digests
    metrics = lambda report: {  # noqa: E731
        cell: {name: metric.values
               for name, metric in sorted(cell_metrics.items())}
        for cell, cell_metrics in sorted(report.cells.items())}
    assert metrics(serial) == metrics(sharded)


def test_mobility_summary_crosses_process_boundary():
    """Worker summaries carry the full mobility report."""
    from repro.experiments.parallel import plan_tasks, run_tasks

    tasks = plan_tasks(MOBILITY_CAMPAIGN, seeds=(0,))
    reports = []
    for workers in (0, 4):
        outcomes = run_tasks(tasks, workers=workers)
        for outcome in outcomes:
            assert outcome.ok, outcome.failure
            mobility = outcome.summary["mobility"]
            assert mobility is not None and not mobility["naive"]
            report = mobility["report"]
            assert report["planned"] >= report["started"]
            assert len(mobility["handovers"]) == report["started"]
            reports.append(mobility)
    # The summaries agree exactly across the process boundary.
    assert reports[0] == reports[1]
