"""Tests for live service migration."""

import pytest

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.orchestra.migration import MigrationController
from repro.orchestra.orchestrator import Orchestrator, OrchestratorError
from repro.scatter.client import ArClient
from repro.scatter.config import uniform_config
from repro.scatter.pipeline import ScatterPipeline
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.sim import RngRegistry, Simulator


def make_running_deployment(scatterpp=False, num_clients=1):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=num_clients)
    orchestrator = Orchestrator(testbed)
    kwargs = scatterpp_pipeline_kwargs() if scatterpp else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               uniform_config("E2", "e2"), **kwargs)
    pipeline.deploy()
    orchestrator.start()
    clients = [ArClient(client_id=i, node=node,
                        network=testbed.network,
                        registry=orchestrator.registry,
                        rng=rng.stream(f"client.{i}"))
               for i, node in enumerate(testbed.client_nodes)]
    return sim, testbed, orchestrator, pipeline, clients


def test_migration_moves_replica():
    sim, testbed, orchestrator, __, __c = make_running_deployment()
    controller = MigrationController(orchestrator,
                                     startup_delay_s=1.0, drain_s=0.5)
    old = orchestrator.instances("lsh")[0]
    record = controller.migrate("lsh", old, "e1")
    sim.run(until=3.0)

    instances = orchestrator.instances("lsh")
    assert len(instances) == 1
    assert instances[0].address.node == "e1"
    assert record.completed_s == pytest.approx(1.5)
    assert record.traffic_shifted_s == pytest.approx(1.0)
    assert record.duration_s == pytest.approx(1.5)
    # The semantic address resolves to the new replica only.
    assert orchestrator.registry.instances("lsh") == \
        [instances[0].address]
    # The old container released its memory on e2.
    assert old.container.memory_bytes() == 0.0


def test_migration_traffic_continues_make_before_break():
    sim, __, orchestrator, __p, clients = make_running_deployment(
        scatterpp=True)
    controller = MigrationController(orchestrator,
                                     startup_delay_s=1.0, drain_s=0.5)
    clients[0].start(10.0)

    def trigger():
        yield sim.timeout(3.0)
        old = orchestrator.instances("sift")[0]
        controller.migrate("sift", old, "e1")

    sim.spawn(trigger())
    sim.run(until=10.0 + DRAIN_S)
    # Stateless sift behind a sidecar: the migration is seamless.
    assert clients[0].stats.success_rate() >= 0.97


def test_migration_of_stateful_sift_loses_in_flight_state():
    sim, __, orchestrator, __p, clients = make_running_deployment(
        scatterpp=False)
    controller = MigrationController(orchestrator,
                                     startup_delay_s=1.0, drain_s=0.0)
    clients[0].start(10.0)

    def trigger():
        yield sim.timeout(3.0)
        old = orchestrator.instances("sift")[0]
        controller.migrate("sift", old, "e1")

    sim.spawn(trigger())
    sim.run(until=10.0 + DRAIN_S)
    # Frames whose state lived on the old replica lose their fetches:
    # strictly worse than the no-migration baseline for a while.
    assert clients[0].stats.success_rate() < 0.97


def test_migration_counts_dropped_state_entries():
    """Session entries still on the old replica when it stops are
    counted on the record — the stateful loss is never silent."""
    sim, __, orchestrator, __p, __c = make_running_deployment()
    controller = MigrationController(orchestrator,
                                     startup_delay_s=1.0, drain_s=0.0)
    old = orchestrator.instances("sift")[0]
    # Pin entries that outlive the migration's 1.0 s startup window.
    old.state.ttl_s = 60.0
    for frame in range(3):
        old.state.put((0, frame), object(), size_bytes=1024.0)
    record = controller.migrate("sift", old, "e1")
    sim.run(until=3.0)

    assert record.completed_s is not None
    assert record.dropped_migration == 3
    assert record.as_dict()["dropped_migration"] == 3


def test_migration_of_stateless_service_drops_no_state():
    sim, __, orchestrator, __p, clients = make_running_deployment(
        scatterpp=True)
    controller = MigrationController(orchestrator,
                                     startup_delay_s=1.0, drain_s=0.5)
    clients[0].start(10.0)

    def trigger():
        yield sim.timeout(3.0)
        old = orchestrator.instances("lsh")[0]
        controller.migrate("lsh", old, "e1")

    sim.spawn(trigger())
    sim.run(until=10.0 + DRAIN_S)
    record = controller.records[0]
    assert record.completed_s is not None
    assert record.dropped_migration == 0
    summary = record.as_dict()
    assert summary["service"] == "lsh"
    assert summary["duration_s"] == pytest.approx(1.5)
    assert summary["dropped_migration"] == 0


def test_migration_validation():
    sim, __, orchestrator, __p, __c = make_running_deployment()
    controller = MigrationController(orchestrator)
    lsh = orchestrator.instances("lsh")[0]
    with pytest.raises(OrchestratorError):
        controller.migrate("lsh", lsh, "e2")  # already there
    with pytest.raises(OrchestratorError):
        controller.migrate("sift", lsh, "e1")  # wrong service
    with pytest.raises(ValueError):
        MigrationController(orchestrator, startup_delay_s=-1.0)


def test_remove_instance_validation():
    sim, __, orchestrator, __p, __c = make_running_deployment()
    lsh = orchestrator.instances("lsh")[0]
    orchestrator.remove_instance("lsh", lsh)
    with pytest.raises(OrchestratorError):
        orchestrator.remove_instance("lsh", lsh)
