"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, _named_config, build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["run", "--config", "C1", "--clients",
                              "2", "--duration", "5"])
    assert args.command == "run"
    assert args.clients == 2


def test_figures_command_lists_all(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_figures_registry_covers_evaluation():
    expected = {"fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                "fig9", "fig10", "fig11", "fig12", "headline"}
    assert set(FIGURES) == expected


def test_run_command_scatter(capsys):
    code = main(["run", "--config", "C1", "--clients", "1",
                 "--duration", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean FPS" in out
    assert "sift" in out


def test_run_command_scatterpp_with_trace(capsys):
    code = main(["run", "--config", "C2", "--pipeline", "scatterpp",
                 "--clients", "1", "--duration", "3", "--trace"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace component" in out
    assert "network" in out


def test_run_command_replica_vector(capsys):
    code = main(["run", "--config", "1,2,1,1,2", "--clients", "1",
                 "--duration", "2"])
    assert code == 0
    assert "[1, 2, 1, 1, 2]" in capsys.readouterr().out


def test_figure_command(capsys):
    code = main(["figure", "fig4", "--duration", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cloud" in out
    assert "FPS" in out


def test_figure_command_unknown(capsys):
    assert main(["figure", "fig99"]) == 2


def test_testbed_command(capsys):
    assert main(["testbed"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e2" in out and "cloud" in out
    assert "15.00" in out  # client <-> cloud RTT


def test_named_config_errors():
    with pytest.raises(SystemExit):
        _named_config("nonsense")


def test_named_config_variants():
    assert _named_config("C21").name == "C21"
    assert _named_config("cloud").name == "cloud"
    assert _named_config("hybrid").name == "hybrid"
    assert _named_config("[1, 3, 2, 1, 3]").replica_vector() == \
        [1, 3, 2, 1, 3]


def test_optimize_command(capsys):
    assert main(["optimize", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "pred FPS" in out
    assert "best by throughput" in out


def test_optimize_latency_objective(capsys):
    assert main(["optimize", "--objective", "latency"]) == 0
    assert "best by latency" in capsys.readouterr().out
