"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.summary import summarize
from repro.net.addresses import Address, ServiceRegistry
from repro.sim import Simulator
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry
from repro.vision.image import bilinear_resize, to_grayscale
from repro.vision.lsh import LshIndex
from repro.vision.matching import match_descriptors
from repro.vision.pca import Pca
from repro.vision.pose import estimate_homography_dlt

COMMON = settings(max_examples=30,
                  suppress_health_check=[HealthCheck.too_slow],
                  deadline=None)


# ----------------------------------------------------------------------
# Simulator ordering
# ----------------------------------------------------------------------
@COMMON
@given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                min_size=1, max_size=40))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == max(delays)


@COMMON
@given(st.lists(st.floats(min_value=0.001, max_value=5.0),
                min_size=1, max_size=20))
def test_sequential_process_accumulates_delays(delays):
    sim = Simulator()
    total = []

    def proc():
        for delay in delays:
            yield sim.timeout(delay)
        total.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert total[0] == pytest.approx(sum(delays))


# ----------------------------------------------------------------------
# Store / Resource invariants
# ----------------------------------------------------------------------
@COMMON
@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    for item in items:
        store.put_nowait(item)
    got = [store.get_nowait() for __ in items]
    assert got == items


@COMMON
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=30))
def test_resource_never_exceeds_capacity(capacity, jobs):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = []

    def worker():
        yield resource.acquire()
        peak.append(resource.in_use)
        yield sim.timeout(1.0)
        resource.release()

    for __ in range(jobs):
        sim.spawn(worker())
    sim.run()
    assert max(peak) <= capacity
    assert resource.in_use == 0


# ----------------------------------------------------------------------
# RNG determinism
# ----------------------------------------------------------------------
@COMMON
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.text(alphabet="abcdefg.", min_size=1, max_size=12))
def test_rng_reproducible_for_any_seed_and_name(seed, name):
    a = RngRegistry(seed).stream(name).random(4)
    b = RngRegistry(seed).stream(name).random(4)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Registry round-robin fairness
# ----------------------------------------------------------------------
@COMMON
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=60))
def test_round_robin_is_fair(replicas, requests):
    registry = ServiceRegistry()
    addresses = [Address(f"m{i}", 1) for i in range(replicas)]
    for address in addresses:
        registry.register("svc", address)
    counts = {address: 0 for address in addresses}
    for __ in range(requests):
        counts[registry.resolve("svc")] += 1
    assert max(counts.values()) - min(counts.values()) <= 1


# ----------------------------------------------------------------------
# Summary statistics
# ----------------------------------------------------------------------
@COMMON
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=200))
def test_summary_bounds(values):
    summary = summarize(values)
    # The mean of N identical floats can differ by an ulp from the
    # inputs, so bound checks carry a tiny relative epsilon.
    epsilon = 1e-9 * max(1.0, abs(summary.minimum),
                         abs(summary.maximum))
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.minimum - epsilon <= summary.mean \
        <= summary.maximum + epsilon
    assert summary.minimum - epsilon <= summary.p95 \
        <= summary.maximum + epsilon
    assert summary.count == len(values)


# ----------------------------------------------------------------------
# Vision invariants
# ----------------------------------------------------------------------
@COMMON
@given(st.integers(min_value=2, max_value=24),
       st.integers(min_value=2, max_value=24))
def test_grayscale_preserves_range(height, width):
    rng = np.random.default_rng(height * 100 + width)
    image = rng.random((height, width, 3))
    gray = to_grayscale(image)
    assert gray.shape == (height, width)
    assert gray.min() >= 0.0 and gray.max() <= 1.0


@COMMON
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30))
def test_resize_output_shape_and_range(height, width):
    rng = np.random.default_rng(height * 31 + width)
    image = rng.random((16, 16))
    resized = bilinear_resize(image, (height, width))
    assert resized.shape == (height, width)
    # Bilinear interpolation cannot exceed the input range.
    assert resized.min() >= image.min() - 1e-9
    assert resized.max() <= image.max() + 1e-9


@COMMON
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=10, max_value=60))
def test_pca_projection_dimensions_and_variance(components, samples):
    rng = np.random.default_rng(components * 100 + samples)
    data = rng.normal(0, 1, (samples, 8))
    pca = Pca(min(components, samples)).fit(data)
    projected = pca.transform(data)
    assert projected.shape == (samples, min(components, samples))
    # Projection is centred.
    assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-8)


@COMMON
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_lsh_self_query_always_top(seed):
    rng = np.random.default_rng(seed)
    index = LshIndex(dimension=16, seed=3)
    vectors = {i: rng.normal(0, 1, 16) for i in range(8)}
    for key, vector in vectors.items():
        index.insert(key, vector)
    probe = rng.integers(0, 8)
    matches = index.query(vectors[probe], k=1)
    assert matches[0].key == probe


@COMMON
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_matching_is_symmetric_for_identical_sets(seed):
    rng = np.random.default_rng(seed)
    descriptors = rng.normal(0, 1, (12, 8))
    matches = match_descriptors(descriptors, descriptors, ratio=0.95)
    assert len(matches) == 12
    assert all(m.query_index == m.reference_index for m in matches)


@COMMON
@given(st.floats(min_value=0.2, max_value=5.0),
       st.floats(min_value=-3.0, max_value=3.0),
       st.floats(min_value=-50.0, max_value=50.0),
       st.floats(min_value=-50.0, max_value=50.0))
def test_homography_recovers_similarity_transforms(scale, angle, tx, ty):
    src = np.array([[0.0, 0.0], [20.0, 0.0], [20.0, 20.0], [0.0, 20.0],
                    [7.0, 3.0], [4.0, 15.0]])
    rotation = np.array([[np.cos(angle), -np.sin(angle)],
                         [np.sin(angle), np.cos(angle)]])
    dst = src @ (scale * rotation).T + np.array([tx, ty])
    matrix = estimate_homography_dlt(src, dst)
    assert matrix is not None
    mapped = np.hstack([src, np.ones((len(src), 1))]) @ matrix.T
    mapped = mapped[:, :2] / mapped[:, 2:3]
    assert np.allclose(mapped, dst, atol=1e-5)
