"""Properties of the content-addressed campaign cell cache.

The contract under test: a cache hit is bit-identical to a recompute
because the *key* covers everything that could change the result —
every task field, the resolved placement, pipeline-registered extras,
and the source tree itself — and because only clean outcomes are ever
admitted.  Damage tolerance rides along: truncated or malformed
entries are misses (recompute), never crashes, and concurrent writers
sharing a directory race benignly thanks to atomic replace.
"""

import json
import multiprocessing
import os
import signal
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import campaign as campaign_mod
from repro.experiments.cache import (
    ENTRY_FORMAT,
    CampaignCellCache,
    code_fingerprint,
    reset_code_fingerprint_cache,
    resolve_cell_cache,
    task_fingerprint,
)
from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.parallel import (
    CellTask,
    plan_tasks,
    run_tasks,
    shutdown_pool,
    warm_pool,
)

requires_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fake-runner injection into pool workers requires fork")


def make_task(**overrides):
    defaults = dict(pipeline="scatter", placement="C1", clients=1,
                    seed=0, duration_s=1.0)
    defaults.update(overrides)
    return CellTask(**defaults)


def fake_runner(placement, *, num_clients, duration_s, seed):
    return {"fps": 30.0 - num_clients, "success_rate": 1.0,
            "e2e_ms": 40.0 + seed, "jitter_ms": 1.0, "qoe_mos": 4.0,
            "trace_digest":
                f"digest-{placement.name}-{num_clients}c-s{seed}"}


def raising_runner(placement, *, num_clients, duration_s, seed):
    raise RuntimeError("cache poisoning probe")


def killer_runner(placement, *, num_clients, duration_s, seed):
    if placement.name == "C2":
        os.kill(os.getpid(), signal.SIGKILL)
    return fake_runner(placement, num_clients=num_clients,
                       duration_s=duration_s, seed=seed)


@pytest.fixture
def cache(tmp_path):
    return CampaignCellCache(tmp_path / "cells")


# ----------------------------------------------------------------------
# Fingerprint stability: same config = same key, any change = new key
# ----------------------------------------------------------------------
def test_task_fingerprint_is_stable():
    assert task_fingerprint(make_task()) == task_fingerprint(make_task())


@pytest.mark.parametrize("field,value", [
    ("pipeline", "scatterpp"),
    ("placement", "C2"),
    ("clients", 2),
    ("seed", 1),
    ("duration_s", 2.0),
])
def test_any_task_field_change_changes_the_fingerprint(field, value):
    base = task_fingerprint(make_task())
    assert task_fingerprint(make_task(**{field: value})) != base


def test_runner_extras_are_folded_into_the_fingerprint(monkeypatch):
    """Config a runner injects beyond the task (the cohort multiplier)
    must change the key when it changes, even though the task fields
    do not."""
    task = make_task(pipeline="cohort")
    base = task_fingerprint(task)
    monkeypatch.setattr(campaign_mod, "DEFAULT_COHORT_MULTIPLIER", 7)
    assert task_fingerprint(task) != base


def test_cache_key_combines_task_and_code(cache):
    assert cache.key(make_task()) == cache.key(make_task())
    assert cache.key(make_task()) != cache.key(make_task(seed=1))
    assert cache.key(make_task()) != task_fingerprint(make_task())


# ----------------------------------------------------------------------
# Code fingerprint: any source byte invalidates
# ----------------------------------------------------------------------
def _fake_tree(tmp_path):
    root = tmp_path / "tree"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "mod.py").write_text("VALUE = 1\n")
    (root / "top.py").write_text("import pkg.mod\n")
    return root


def test_code_fingerprint_covers_every_source_byte(tmp_path):
    root = _fake_tree(tmp_path)
    reset_code_fingerprint_cache()
    base = code_fingerprint(root)
    assert code_fingerprint(root) == base  # memoized and stable

    (root / "pkg" / "mod.py").write_text("VALUE = 2\n")
    reset_code_fingerprint_cache()
    assert code_fingerprint(root) != base

    (root / "pkg" / "mod.py").write_text("VALUE = 1\n")
    reset_code_fingerprint_cache()
    assert code_fingerprint(root) == base  # content, not mtime

    (root / "pkg" / "extra.py").write_text("")
    reset_code_fingerprint_cache()
    assert code_fingerprint(root) != base  # new files count too
    reset_code_fingerprint_cache()


def test_source_edit_invalidates_cached_cells(tmp_path):
    """A cell cached under one source tree misses under an edited one."""
    root = _fake_tree(tmp_path)
    reset_code_fingerprint_cache()
    cache = CampaignCellCache(tmp_path / "cells", code_root=root)
    task = make_task()
    cache.put(task, {"fps": 30.0})
    assert cache.get(task) == {"fps": 30.0}

    (root / "pkg" / "mod.py").write_text("VALUE = 2  # one byte moved\n")
    reset_code_fingerprint_cache()
    assert cache.get(task) is None  # same task, new code, new key
    assert len(cache) == 2 - 1  # old entry still on disk, orphaned
    reset_code_fingerprint_cache()


# ----------------------------------------------------------------------
# Round trip, stats, resolver
# ----------------------------------------------------------------------
def test_round_trip_returns_exactly_the_stored_summary(cache):
    summary = {"fps": 29.5, "trace_digest": "abc",
               "nested": {"values": [1.0, 2.0]}}
    assert cache.get(make_task()) is None  # cold
    cache.put(make_task(), summary)
    assert cache.get(make_task()) == summary
    report = cache.report()
    assert (report["hits"], report["misses"], report["stored"]) \
        == (1, 1, 1)
    assert report["entries"] == 1 and report["corrupt"] == 0


def test_disabled_cache_never_reads_or_writes(tmp_path):
    cache = CampaignCellCache(tmp_path / "cells", enabled=False)
    assert cache.put(make_task(), {"fps": 1.0}) is None
    assert cache.get(make_task()) is None
    assert len(cache) == 0


def test_put_rejects_non_dict_summaries(cache):
    with pytest.raises(TypeError):
        cache.put(make_task(), [1, 2, 3])


def test_resolve_cell_cache_normalizes_arguments(tmp_path, cache):
    assert resolve_cell_cache(None) is None
    assert resolve_cell_cache(False, tmp_path / "x") is None
    assert resolve_cell_cache(cache) is cache
    by_dir = resolve_cell_cache(None, tmp_path / "a")
    assert isinstance(by_dir, CampaignCellCache)
    assert by_dir.directory == tmp_path / "a"
    by_flag = resolve_cell_cache(True, tmp_path / "b")
    assert by_flag.directory == tmp_path / "b"
    by_path = resolve_cell_cache(tmp_path / "c")
    assert by_path.directory == tmp_path / "c"


# ----------------------------------------------------------------------
# No poisoning: failed and quarantined cells are never admitted
# ----------------------------------------------------------------------
@requires_fork
def test_raising_cells_are_never_cached(monkeypatch, cache):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        raising_runner)
    tasks = plan_tasks(Campaign(
        name="poison", pipelines=("scatter",), placements=("C1",),
        client_counts=(1,), duration_s=1.0, seeds=(0, 1)))
    outcomes = run_tasks(tasks, workers=0, cache=cache)
    assert all(not outcome.ok for outcome in outcomes)
    assert len(cache) == 0
    assert cache.report()["stored"] == 0


@requires_fork
def test_quarantined_cells_are_never_cached(monkeypatch, cache):
    """A SIGKILL breaks the batch; quarantine retries the casualties.
    Neither the lethal task nor its quarantine-recovered batchmates
    may be admitted — recovery under a broken pool is not a clean run."""
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        killer_runner)
    tasks = plan_tasks(Campaign(
        name="poison", pipelines=("scatter",),
        placements=("C2", "C1"), client_counts=(1, 2, 3),
        duration_s=1.0, seeds=(0,)))
    shutdown_pool()
    warm_pool(2)
    try:
        outcomes = run_tasks(tasks, workers=2, cache=cache)
    finally:
        shutdown_pool()
    lost = [o for o in outcomes if not o.ok]
    assert lost and all(o.failure.kind == "worker-lost" for o in lost)
    recovered = [o for o in outcomes if o.ok and o.quarantined]
    clean = [o for o in outcomes if o.ok and not o.quarantined]
    # Only the clean outcomes may appear on disk.
    assert len(cache) == len(clean)
    for outcome in recovered + lost:
        assert cache.get(outcome.task) is None


# ----------------------------------------------------------------------
# Concurrent writers: atomic replace, no torn entries
# ----------------------------------------------------------------------
def test_concurrent_writers_never_tear_an_entry(tmp_path):
    """Many writers racing on the same key (and distinct keys) must
    leave only complete, parseable entries behind."""
    directory = tmp_path / "cells"
    summary = {"fps": 30.0, "blob": "x" * 4096}

    def writer(seed):
        cache = CampaignCellCache(directory)
        cache.put(make_task(), summary)  # shared key: pure race
        cache.put(make_task(seed=seed), summary)  # distinct key
        return cache.get(make_task())

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(writer, range(1, 17)))
    assert all(result == summary for result in results)

    reader = CampaignCellCache(directory)
    assert len(reader) == 1 + 16
    for path in sorted(directory.glob("*.json")):
        entry = json.loads(path.read_text())
        assert entry["format"] == ENTRY_FORMAT
        assert entry["summary"] == summary
    assert not list(directory.glob("*.tmp"))  # no droppings


# ----------------------------------------------------------------------
# Corrupt entries: recompute, never crash
# ----------------------------------------------------------------------
@pytest.mark.parametrize("damage", [
    lambda raw: raw[:len(raw) // 2],             # truncated write
    lambda raw: "",                              # zero-length file
    lambda raw: "not json at all {",             # garbage
    lambda raw: json.dumps([1, 2, 3]),           # wrong shape
    lambda raw: json.dumps({"format": 999,       # future schema
                            "summary": {}}),
    lambda raw: json.dumps({"format": ENTRY_FORMAT,
                            "summary": "oops"}),  # non-dict summary
])
def test_corrupt_entries_are_misses_not_crashes(cache, damage):
    cache.put(make_task(), {"fps": 30.0})
    path = cache._path(cache.key(make_task()))
    path.write_text(damage(path.read_text()))

    assert cache.get(make_task()) is None
    assert cache.corrupt == 1
    assert not path.exists()  # unlinked so the rerun can heal it

    cache.put(make_task(), {"fps": 30.0})
    assert cache.get(make_task()) == {"fps": 30.0}


@requires_fork
def test_corrupt_entry_heals_through_a_campaign_rerun(
        monkeypatch, tmp_path):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter", fake_runner)
    campaign = Campaign(name="heal", pipelines=("scatter",),
                        placements=("C1",), client_counts=(1,),
                        duration_s=1.0, seeds=(0, 1))
    cache = CampaignCellCache(tmp_path / "cells")
    cold = run_campaign(campaign, cache=cache)
    assert cold.cache["stored"] == 2

    victim = next(iter((tmp_path / "cells").glob("*.json")))
    victim.write_text(victim.read_text()[:40])  # truncate one entry

    rerun_cache = CampaignCellCache(tmp_path / "cells")
    warm = run_campaign(campaign, cache=rerun_cache)
    assert warm.cache["hits"] == 1
    assert warm.cache["misses"] == 1  # the corrupt one recomputed
    assert warm.cache["corrupt"] == 1
    assert warm.cache["stored"] == 1  # and was re-admitted
    assert warm.digests == cold.digests
    assert len(rerun_cache) == 2


# ----------------------------------------------------------------------
# End to end: cold run stores, warm run replays bit-identically
# ----------------------------------------------------------------------
@requires_fork
def test_campaign_rerun_replays_from_cache(monkeypatch, tmp_path):
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter", fake_runner)
    campaign = Campaign(name="warm", pipelines=("scatter",),
                        placements=("C1", "C2"), client_counts=(1, 2),
                        duration_s=1.0, seeds=(0, 1))
    tasks = len(campaign.cells) * len(campaign.seeds)

    cold = run_campaign(campaign, cache_dir=str(tmp_path / "cells"))
    assert cold.cache["misses"] == tasks
    assert cold.cache["stored"] == tasks

    warm = run_campaign(campaign, cache_dir=str(tmp_path / "cells"))
    assert warm.cache["hits"] == tasks
    assert warm.cache["misses"] == 0
    assert warm.cache["stored"] == 0
    assert warm.digests == cold.digests
    assert {cell: {name: metric.values
                   for name, metric in metrics.items()}
            for cell, metrics in warm.cells.items()} \
        == {cell: {name: metric.values
                   for name, metric in metrics.items()}
            for cell, metrics in cold.cells.items()}
