"""Integration tests: the full CV pipeline recognizes rendered scenes."""

import numpy as np
import pytest

from repro.vision.dataset import WorkplaceDataset
from repro.vision.recognizer import ObjectRecognizer, RecognizerTrainer
from repro.vision.sift import SiftExtractor
from repro.vision.video import SyntheticVideo


@pytest.fixture(scope="module")
def recognizer():
    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.01, max_keypoints=300)
    return RecognizerTrainer(seed=0).train(dataset, extractor)


@pytest.fixture(scope="module")
def video():
    return SyntheticVideo(seed=0)


def test_training_builds_all_components(recognizer):
    assert recognizer.pca.fitted
    assert recognizer.encoder.gmm.fitted
    assert len(recognizer.index) == 3


def test_recognizes_objects_in_scene(recognizer, video):
    frame = video.frame(0)
    result = recognizer.process_frame(frame.image)
    assert result.num_keypoints > 20
    names = {r.name for r in result.recognitions}
    assert len(names) >= 2, f"only recognized {names}"
    for recognition in result.recognitions:
        assert recognition.num_inliers >= recognizer.min_inliers
        assert recognition.corners.shape == (4, 2)


def test_bounding_boxes_near_ground_truth(recognizer, video):
    frame = video.frame(0)
    result = recognizer.process_frame(frame.image)
    truth = {placement.name: placement
             for placement in frame.ground_truth}
    for recognition in result.recognitions:
        expected = truth[recognition.name].corners
        # Compare box centres: recognition should localize the object.
        found_centre = recognition.corners.mean(axis=0)
        expected_centre = expected.mean(axis=0)
        distance = np.linalg.norm(found_centre - expected_centre)
        assert distance < 15.0, (
            f"{recognition.name} localized {distance:.1f} px off")


def test_recognition_across_camera_motion(recognizer, video):
    """Most frames of the pan recognize at least one object."""
    recognized_frames = 0
    probes = [0, 60, 120, 180, 240]
    for index in probes:
        result = recognizer.process_frame(video.frame(index).image)
        if result.recognitions:
            recognized_frames += 1
    assert recognized_frames >= 4


def test_empty_frame_recognizes_nothing(recognizer):
    result = recognizer.process_frame(np.full((144, 192), 0.5))
    assert result.recognitions == ()
    assert result.num_keypoints == 0


def test_preprocess_resizes_when_configured(recognizer):
    scaled = ObjectRecognizer(
        dataset=recognizer.dataset, extractor=recognizer.extractor,
        pca=recognizer.pca, encoder=recognizer.encoder,
        index=recognizer.index, working_size=(72, 96))
    gray = scaled.preprocess(np.zeros((144, 192, 3)))
    assert gray.shape == (72, 96)


def test_encode_empty_descriptor_set(recognizer):
    fisher = recognizer.encode(np.empty((0, 128)))
    assert fisher.shape == (recognizer.encoder.dimension,)
    assert np.all(fisher == 0.0)


def test_trainer_rejects_featureless_dataset():
    dataset = WorkplaceDataset(seed=0)
    # An extractor with an absurd threshold finds nothing.
    extractor = SiftExtractor(contrast_threshold=0.9)
    with pytest.raises(ValueError):
        RecognizerTrainer().train(dataset, extractor)
