"""Tests for the recognition-quality evaluation harness."""

import numpy as np
import pytest

from repro.vision.dataset import ScenePlacement, WorkplaceDataset
from repro.vision.evaluation import (
    AccuracyReport,
    bounding_box,
    box_iou,
    evaluate_recognizer,
    polygon_area,
    score_frame,
)
from repro.vision.recognizer import Recognition, RecognizerTrainer
from repro.vision.sift import SiftExtractor
from repro.vision.video import SyntheticVideo


def square(x0, y0, size):
    return np.array([[x0, y0], [x0 + size, y0],
                     [x0 + size, y0 + size], [x0, y0 + size]],
                    dtype=float)


def placement(name, x0=10.0, y0=10.0, size=20.0):
    corners = square(x0, y0, size)
    return ScenePlacement(name=name, affine=np.zeros((2, 3)),
                          corners=corners)


def recognition(name, x0=10.0, y0=10.0, size=20.0):
    return Recognition(name=name, corners=square(x0, y0, size),
                       num_inliers=10, similarity=0.9, mean_error=0.5)


# ----------------------------------------------------------------------
# Geometry helpers
# ----------------------------------------------------------------------
def test_polygon_area_square():
    assert polygon_area(square(0, 0, 10)) == pytest.approx(100.0)


def test_bounding_box():
    assert bounding_box(square(2, 3, 5)) == (2.0, 3.0, 7.0, 8.0)


def test_iou_identical_is_one():
    a = square(0, 0, 10)
    assert box_iou(a, a) == pytest.approx(1.0)


def test_iou_disjoint_is_zero():
    assert box_iou(square(0, 0, 10), square(100, 100, 10)) == 0.0


def test_iou_half_overlap():
    a = square(0, 0, 10)
    b = square(5, 0, 10)
    # intersection 50, union 150.
    assert box_iou(a, b) == pytest.approx(1 / 3)


# ----------------------------------------------------------------------
# Frame scoring
# ----------------------------------------------------------------------
def test_score_perfect_frame():
    truth = [placement("monitor"), placement("table", x0=60.0)]
    found = [recognition("monitor"), recognition("table", x0=60.0)]
    score = score_frame(found, truth)
    assert score.true_positives == 2
    assert score.false_positives == 0
    assert score.false_negatives == 0
    assert score.localization_errors_px == pytest.approx([0.0, 0.0])


def test_score_miss_and_hallucination():
    truth = [placement("monitor")]
    found = [recognition("keyboard", x0=60.0)]
    score = score_frame(found, truth)
    assert score.true_positives == 0
    assert score.false_positives == 1
    assert score.false_negatives == 1


def test_score_poor_overlap_is_false_positive():
    truth = [placement("monitor", x0=0.0)]
    found = [recognition("monitor", x0=100.0)]
    score = score_frame(found, truth)
    assert score.false_positives == 1
    assert score.false_negatives == 1


def test_score_duplicate_recognitions_penalized():
    truth = [placement("monitor")]
    found = [recognition("monitor"), recognition("monitor")]
    score = score_frame(found, truth)
    assert score.true_positives == 1
    assert score.false_positives == 1


def test_score_threshold_validation():
    with pytest.raises(ValueError):
        score_frame([], [], iou_threshold=0.0)


def test_report_derived_metrics():
    report = AccuracyReport(frames=10, true_positives=8,
                            false_positives=2, false_negatives=4,
                            mean_localization_error_px=1.0,
                            mean_iou=0.8, per_object_recall={})
    assert report.precision == pytest.approx(0.8)
    assert report.recall == pytest.approx(8 / 12)
    assert report.f1 == pytest.approx(2 * 0.8 * (8 / 12)
                                      / (0.8 + 8 / 12))


def test_report_empty_denominators():
    report = AccuracyReport(frames=0, true_positives=0,
                            false_positives=0, false_negatives=0,
                            mean_localization_error_px=0.0,
                            mean_iou=0.0, per_object_recall={})
    assert report.precision == 0.0
    assert report.recall == 0.0
    assert report.f1 == 0.0


# ----------------------------------------------------------------------
# End-to-end accuracy of the real recognizer
# ----------------------------------------------------------------------
def test_recognizer_accuracy_on_video():
    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.01,
                              max_keypoints=300)
    recognizer = RecognizerTrainer(seed=0).train(dataset, extractor)
    video = SyntheticVideo(seed=0)
    report = evaluate_recognizer(recognizer, video,
                                 frame_indices=range(0, 120, 15))
    assert report.frames == 8
    # Recognitions are precise (few hallucinations) and cover most
    # objects; localization is tight when they hit.
    assert report.precision >= 0.8
    # Recall is pose-dependent (mid-pan frames lose the weaker
    # objects); what matters is that hits are precise and tight.
    assert report.recall >= 0.4
    assert report.mean_localization_error_px <= 8.0
    assert report.mean_iou >= 0.6
    assert set(report.per_object_recall) == {"monitor", "keyboard",
                                             "table"}
