"""Tests for the experiment harness and figure reproductions.

Durations are kept short — these verify mechanics and directional
shapes; the benchmarks regenerate the figures at full length.
"""

import pytest

from repro.experiments import figures
from repro.experiments.reporting import (
    analytics_table,
    format_table,
    qos_table,
    service_metric_table,
    utilization_table,
)
from repro.experiments.runner import run_scatter_experiment
from repro.scatter.config import baseline_configs


@pytest.fixture(scope="module")
def fig2_rows():
    return figures.fig2_baseline_edge(clients=(1, 4), duration_s=8.0)


def test_fig2_rows_cover_grid(fig2_rows):
    configs = {row["config"] for row in fig2_rows}
    assert configs == {"C1", "C2", "C12", "C21"}
    assert len(fig2_rows) == 8


def test_fig2_single_client_realtime(fig2_rows):
    for row in fig2_rows:
        if row["clients"] == 1:
            assert row["fps"] >= 24.0, row
            assert 30.0 <= row["e2e_ms"] <= 60.0, row


def test_fig2_degradation_with_clients(fig2_rows):
    by_config = {}
    for row in fig2_rows:
        by_config.setdefault(row["config"], {})[row["clients"]] = row
    for config, rows in by_config.items():
        assert rows[4]["fps"] < rows[1]["fps"] * 0.5, config
        assert rows[4]["memory_gb"]["sift"] > \
            rows[1]["memory_gb"]["sift"], config


def test_fig3_scaling_ordering():
    rows = figures.fig3_scalability(clients=(2,), duration_s=10.0)
    fps = {row["config"]: row["fps"] for row in rows}
    # §4: [1,2,2,1,2] is the best-performing configuration at 2-3
    # clients; [2,2,1,1,1] trails the baseline.
    assert fps["[1, 2, 2, 1, 2]"] >= fps["baseline-E2"]
    assert fps["[2, 2, 1, 1, 1]"] <= fps["baseline-E2"] * 1.05


def test_fig4_cloud_below_edge():
    rows = figures.fig4_cloud(clients=(1,), duration_s=10.0)
    row = rows[0]
    # §4: 18.2 FPS median vs 25 FPS at the edge; reduced success.
    assert 12.0 <= row["median_fps"] <= 24.0
    assert row["success_rate"] < 0.80
    assert row["e2e_ms"] > 55.0


def test_fig6_scatterpp_improves_multi_client():
    pp = figures.fig6_scatterpp_edge(clients=(4,), duration_s=8.0)
    scatter = figures.fig2_baseline_edge(clients=(4,), duration_s=8.0)
    pp_fps = {row["config"]: row["fps"] for row in pp}
    sc_fps = {row["config"]: row["fps"] for row in scatter}
    for config in pp_fps:
        assert pp_fps[config] > sc_fps[config] * 1.8, config


def test_fig7_shapes():
    rows = figures.fig7_scaling_clients(clients=(2, 6),
                                        duration_s=8.0)
    assert len(rows) == 6
    by_config = {}
    for row in rows:
        by_config.setdefault(row["config"], {})[row["clients"]] = row
    for config, per_clients in by_config.items():
        assert per_clients[6]["fps"] <= per_clients[2]["fps"], config
    # The [1,3,2,1,3] deployment sustains mid-range load best.
    assert by_config["[1, 3, 2, 1, 3]"][6]["fps"] >= \
        by_config["[1, 2, 1, 1, 2]"][6]["fps"]


def test_fig9_structure():
    report = figures.fig9_network_conditions(clients=(1,),
                                             duration_s=8.0)
    assert len(report["loss"]) == len(figures.FIG9_LOSS_GRID)
    assert len(report["latency"]) == len(figures.FIG9_RTT_GRID_S)
    # A.1.1: latency shifts E2E but not the framerate.
    lat = {row["rtt_ms"]: row for row in report["latency"]}
    assert lat[40.0]["e2e_ms"] > lat[1.0]["e2e_ms"] + 25.0
    assert lat[40.0]["fps"] == pytest.approx(lat[1.0]["fps"], rel=0.15)


def test_fig10_panels():
    panels = figures.fig10_jitter(clients=(1,), duration_s=8.0)
    assert set(panels) == {"baseline", "scaling", "cloud"}
    for rows in panels.values():
        for row in rows:
            assert row["jitter_ms"] >= 0.0


def test_fig11_hybrid_worse_than_cloud():
    rows = figures.fig11_hybrid(clients=(1,), duration_s=10.0)
    fps = {row["config"]: row["fps"] for row in rows}
    assert fps["hybrid"] < fps["cloud"]


def test_fig12_report_structure():
    report = figures.fig12_sidecar_e1(max_clients=2, stage_s=4.0)
    assert set(report["services"]) == {"primary", "sift", "encoding",
                                       "lsh", "matching"}
    stages = report["services"]["primary"]
    assert [stage["clients"] for stage in stages] == [1, 2]
    assert stages[1]["ingress_fps"] > stages[0]["ingress_fps"]


# ----------------------------------------------------------------------
# Reporting helpers
# ----------------------------------------------------------------------
def test_format_table_alignment():
    table = format_table(["a", "long-header"],
                         [[1, 2.5], ["xx", 3.0]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])
    assert "2.50" in table


def test_qos_and_metric_tables_render(fig2_rows):
    assert "C12" in qos_table(fig2_rows)
    latency = service_metric_table(fig2_rows, "service_latency_ms",
                                   "lat")
    assert "lat:sift" in latency
    assert "cpu%:e1" in utilization_table(fig2_rows)


def test_analytics_table_renders():
    report = figures.fig12_sidecar_e1(max_clients=2, stage_s=4.0)
    table = analytics_table(report)
    assert "ingress FPS" in table
    assert "sift" in table


# ----------------------------------------------------------------------
# Runner mechanics
# ----------------------------------------------------------------------
def test_runner_result_fields():
    result = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=2, duration_s=5.0)
    assert result.num_clients == 2
    assert len(result.clients) == 2
    assert result.analytics is None
    assert len(result.per_client_fps()) == 2
    assert result.median_e2e_ms() > 0
