"""Two independent AR applications sharing one edge testbed.

§3.1 motivates containerized microservices with "multi-tenant edge
environments": several applications, each with its own orchestration
scope, coexist on the same machines and contend for the same GPUs.
"""

import pytest

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.runner import DRAIN_S
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import PIPELINE_ORDER, uniform_config
from repro.scatter.pipeline import ScatterPipeline
from repro.scatterpp.pipeline import scatterpp_pipeline_kwargs
from repro.sim import RngRegistry, Simulator

DURATION_S = 15.0


def deploy_app(testbed, rng, *, base_port, client_id, node,
               scatterpp=False):
    orchestrator = Orchestrator(testbed, base_port=base_port)
    kwargs = scatterpp_pipeline_kwargs() if scatterpp else {}
    pipeline = ScatterPipeline(testbed, orchestrator,
                               uniform_config("E1", "e1"), **kwargs)
    pipeline.deploy()
    orchestrator.start()
    client = ArClient(client_id=client_id, node=node,
                      network=testbed.network,
                      registry=orchestrator.registry,
                      rng=rng.stream(f"client.{client_id}"))
    return orchestrator, pipeline, client


def run_two_apps(scatterpp=False):
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=2)
    app_a = deploy_app(testbed, rng, base_port=6000, client_id=0,
                       node="nuc0", scatterpp=scatterpp)
    app_b = deploy_app(testbed, rng, base_port=7000, client_id=1,
                       node="nuc1", scatterpp=scatterpp)
    for __, __p, client in (app_a, app_b):
        client.start(DURATION_S)
    sim.run(until=DURATION_S + DRAIN_S)
    return sim, testbed, app_a, app_b


def test_two_apps_coexist_and_serve():
    __, __t, app_a, app_b = run_two_apps()
    for orchestrator, pipeline, client in (app_a, app_b):
        assert client.stats.frames_received > 0
        # Two stateful pipelines share E1's two GPUs: each app still
        # serves, but contention takes a real bite.
        assert client.stats.success_rate() > 0.2
        # Each app has its own full pipeline.
        for service in PIPELINE_ORDER:
            assert len(orchestrator.instances(service)) == 1


def test_apps_have_isolated_registries():
    __, __t, app_a, app_b = run_two_apps()
    orchestrator_a = app_a[0]
    orchestrator_b = app_b[0]
    a_sift = orchestrator_a.registry.instances("sift")
    b_sift = orchestrator_b.registry.instances("sift")
    assert a_sift and b_sift
    assert set(a_sift).isdisjoint(b_sift)
    # Results stayed within each app: client A only got its frames.
    client_a = app_a[2]
    assert all(n in client_a.stats.sent for n in
               client_a.stats.received)


def test_apps_share_hardware_books():
    __, testbed, app_a, app_b = run_two_apps()
    e1 = testbed.machine("e1")
    total = sum(
        instance.container.memory_bytes()
        for app in (app_a, app_b)
        for service in PIPELINE_ORDER
        for instance in app[0].instances(service))
    assert e1.memory.in_use_bytes == pytest.approx(total)
    # Ten containers (two full pipelines) are resident on E1.
    assert total > 9e9


def test_co_tenant_app_degrades_neighbour():
    """An app alone on E1 outperforms the same app sharing E1 with a
    second pipeline — mutual GPU contention is real."""
    def solo_fps():
        sim = Simulator()
        rng = RngRegistry(0)
        testbed = build_paper_testbed(sim, rng, num_clients=1)
        __, __p, client = deploy_app(testbed, rng, base_port=6000,
                                     client_id=0, node="nuc0")
        client.start(DURATION_S)
        sim.run(until=DURATION_S + DRAIN_S)
        return client.stats.fps(DURATION_S)

    __, __t, app_a, app_b = run_two_apps()
    shared_fps = app_a[2].stats.fps(DURATION_S)
    assert shared_fps < solo_fps()
