"""Unit tests for SLAs, the scheduler and the orchestrator."""

import numpy as np
import pytest

from repro.cluster import Container
from repro.cluster.machine import GB
from repro.dsp import StreamService
from repro.net import Address, ServiceRegistry
from repro.orchestra import (
    Orchestrator,
    OrchestratorError,
    Scheduler,
    SchedulingError,
    ServiceSla,
    least_loaded_balancer,
)
from repro.orchestra.balancer import weighted_round_robin_balancer
from repro.sim import RngRegistry, Simulator
from repro.cluster.testbed import build_paper_testbed


class NullService(StreamService):
    """A service that computes and does nothing else."""

    def process(self, record):
        yield from self.compute()


def null_factory(sla, machine, address):
    container = Container(machine, sla.service,
                          base_memory_bytes=sla.memory_bytes,
                          uses_gpu=sla.requires_gpu)
    return NullService(name=sla.service, network=_TESTBED.network,
                       registry=_REGISTRY, container=container,
                       address=address, base_time_s=0.010,
                       rng=np.random.default_rng(0))


_TESTBED = None
_REGISTRY = None


@pytest.fixture
def orchestrator():
    global _TESTBED, _REGISTRY
    sim = Simulator()
    _TESTBED = build_paper_testbed(sim, RngRegistry(0), num_clients=2)
    orch = Orchestrator(_TESTBED)
    _REGISTRY = orch.registry
    return orch


# ----------------------------------------------------------------------
# SLA
# ----------------------------------------------------------------------
def test_sla_permits_pin():
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    assert sla.permits("e1")
    assert not sla.permits("e2")


def test_sla_permits_allowlist():
    sla = ServiceSla("sift", memory_bytes=GB,
                     allowed_machines=("e1", "e2"))
    assert sla.permits("e2")
    assert not sla.permits("cloud")


def test_sla_permits_anywhere_by_default():
    sla = ServiceSla("sift", memory_bytes=GB)
    assert sla.permits("anything")


def test_sla_validation():
    with pytest.raises(ValueError):
        ServiceSla("bad", memory_bytes=0)
    with pytest.raises(ValueError):
        ServiceSla("bad", memory_bytes=GB, machine="e9",
                   allowed_machines=("e1",))


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def test_scheduler_honours_pin(orchestrator):
    scheduler = orchestrator.scheduler
    sla = ServiceSla("sift", memory_bytes=GB, machine="e2")
    assert scheduler.place(sla).name == "e2"


def test_scheduler_requires_gpu(orchestrator):
    scheduler = orchestrator.scheduler
    sla = ServiceSla("sift", memory_bytes=GB, requires_gpu=True)
    chosen = scheduler.place(sla)
    assert chosen.has_gpu


def test_scheduler_worst_fit_prefers_most_free_memory(orchestrator):
    scheduler = orchestrator.scheduler
    sla = ServiceSla("svc", memory_bytes=GB, requires_gpu=True)
    # E2 has 264 GB, the most free memory among GPU machines.
    assert scheduler.place(sla).name == "e2"


def test_scheduler_rejects_oversized_demand(orchestrator):
    scheduler = orchestrator.scheduler
    sla = ServiceSla("hog", memory_bytes=10_000 * GB)
    with pytest.raises(SchedulingError):
        scheduler.place(sla)


def test_scheduler_rejects_gpu_on_cpu_only_pin(orchestrator):
    scheduler = orchestrator.scheduler
    sla = ServiceSla("svc", memory_bytes=GB, requires_gpu=True,
                     machine="nuc0")
    with pytest.raises(SchedulingError):
        scheduler.place(sla)


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
def test_deploy_registers_and_starts(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    instances = orchestrator.deploy(sla, null_factory)
    assert len(instances) == 1
    instance = instances[0]
    assert instance.address.node == "e1"
    assert orchestrator.registry.instances("sift") == [instance.address]
    assert _TESTBED.machine("e1").memory.in_use_bytes == GB


def test_deploy_multiple_replicas(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    instances = orchestrator.deploy(sla, null_factory, replicas=3)
    assert len(instances) == 3
    assert len(orchestrator.registry.instances("sift")) == 3
    ports = [i.address.port for i in instances]
    assert len(set(ports)) == 3


def test_scale_up_on_other_machine(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    orchestrator.deploy(sla, null_factory)
    replica = orchestrator.scale_up("sift", machine="e2")
    assert replica.address.node == "e2"
    assert len(orchestrator.instances("sift")) == 2


def test_scale_up_unknown_service(orchestrator):
    with pytest.raises(OrchestratorError):
        orchestrator.scale_up("ghost")


def test_scale_down_removes_latest(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    orchestrator.deploy(sla, null_factory, replicas=2)
    orchestrator.scale_down("sift")
    assert len(orchestrator.instances("sift")) == 1
    assert len(orchestrator.registry.instances("sift")) == 1
    orchestrator.scale_down("sift")  # down to zero is allowed
    with pytest.raises(OrchestratorError):
        orchestrator.scale_down("sift")


def test_failure_redeploy(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    instances = orchestrator.deploy(sla, null_factory)
    orchestrator.start()
    orchestrator.fail_instance(instances[0])
    assert orchestrator.registry.instances("sift") == []
    _TESTBED.sim.run(until=3.0)
    assert orchestrator.redeploy_count == 1
    replacements = orchestrator.instances("sift")
    assert len(replacements) == 1
    assert replacements[0].container.state.value == "running"
    assert len(orchestrator.registry.instances("sift")) == 1


def test_monitor_collects_samples(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    orchestrator.deploy(sla, null_factory)
    orchestrator.start()
    _TESTBED.sim.run(until=3.5)
    assert len(orchestrator.monitor.samples) == 3


def test_deploy_validation(orchestrator):
    sla = ServiceSla("sift", memory_bytes=GB, machine="e1")
    with pytest.raises(OrchestratorError):
        orchestrator.deploy(sla, null_factory, replicas=0)


# ----------------------------------------------------------------------
# Balancers
# ----------------------------------------------------------------------
def test_least_loaded_balancer_picks_min():
    loads = {Address("e1", 1): 5.0, Address("e2", 1): 1.0}
    balance = least_loaded_balancer(lambda addr: loads[addr])
    chosen = balance("svc", list(loads))
    assert chosen == Address("e2", 1)


def test_least_loaded_balancer_deterministic_ties():
    balance = least_loaded_balancer(lambda addr: 0.0)
    instances = [Address("e2", 1), Address("e1", 1)]
    assert balance("svc", instances) == Address("e1", 1)


def test_weighted_round_robin_distribution():
    heavy = Address("e2", 1)
    light = Address("e1", 1)
    balance = weighted_round_robin_balancer({heavy: 3, light: 1})
    picks = [balance("svc", [light, heavy]) for __ in range(8)]
    assert picks.count(heavy) == 6
    assert picks.count(light) == 2
