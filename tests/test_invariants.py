"""System-level conservation invariants under real load.

Every frame, byte and queue entry must be accounted for somewhere —
these tests run full deployments and then audit the books.
"""

import pytest

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import PIPELINE_ORDER, baseline_configs


@pytest.fixture(scope="module")
def scatter_run():
    return run_scatter_experiment(baseline_configs()["C1"],
                                  num_clients=3, duration_s=15.0,
                                  tracing=True)


@pytest.fixture(scope="module")
def scatterpp_run():
    return run_scatterpp_experiment(baseline_configs()["C1"],
                                    num_clients=3, duration_s=15.0)


def test_scatter_frame_conservation(scatter_run):
    """Sent frames = delivered + lost-in-network + dropped-at-services
    + consumed-by-failures + in-flight remainder."""
    sent = sum(c.frames_sent for c in scatter_run.clients)
    delivered = sum(c.frames_received for c in scatter_run.clients)
    assert delivered <= sent
    # Tracing saw every sent frame.
    assert len(scatter_run.tracer) == sent
    completed = len(scatter_run.tracer.completed_traces())
    incomplete = len(scatter_run.tracer.incomplete_traces())
    assert completed == delivered
    assert completed + incomplete == sent


def test_scatter_per_service_accounting(scatter_run):
    for service in PIPELINE_ORDER:
        for instance in scatter_run.pipeline.instances(service):
            stats = instance.stats
            # Everything received was processed, dropped, or is the
            # one unit still in flight at cutoff.
            assert stats.processed + stats.dropped_busy <= \
                stats.received
            assert stats.received - (stats.processed
                                     + stats.dropped_busy) <= 1
            assert stats.failed == 0
            assert len(stats.latency_samples_s) == stats.processed


def test_sift_state_accounting(scatter_run):
    sift = scatter_run.pipeline.instances("sift")[0]
    store = sift.state
    # Every stored entry left by fetch, expiry, or is still resident.
    assert store.stats_stored == (store.stats_fetched
                                  + store.stats_expired + len(store))
    # Resident bytes equal the container's state memory.
    assert store.bytes_in_use == pytest.approx(
        sift.container.state_memory_bytes)


def test_fetch_accounting(scatter_run):
    sift = scatter_run.pipeline.instances("sift")[0]
    matching = scatter_run.pipeline.instances("matching")[0]
    # Fetches that reached sift either hit or missed.
    fetch_attempts = sift.fetch_hits + sift.fetch_misses
    assert fetch_attempts <= matching.stats.processed
    # Matching outcomes partition its processed work (modulo frames
    # without a sift pin, which it also counts as processed).
    assert matching.results_sent + matching.fetch_timeouts <= \
        matching.stats.processed
    assert matching.results_sent == sum(
        c.frames_received for c in scatter_run.clients)


def test_sidecar_queue_conservation(scatterpp_run):
    for service in PIPELINE_ORDER:
        for instance in scatterpp_run.pipeline.instances(service):
            sidecar = instance.sidecar
            stats = sidecar.stats
            # enqueued = dispatched + stale-dropped + still queued
            # (+ at most one entry being processed at cutoff).
            accounted = (stats.dispatched + stats.dropped_stale
                         + sidecar.depth)
            assert 0 <= stats.enqueued - accounted <= 1
            # Overflow counted separately from enqueued.
            assert stats.dropped_overflow >= 0
            # Queue memory zero or positive, never negative.
            assert instance.container.state_memory_bytes >= 0


def test_machine_memory_books_balance(scatterpp_run):
    for name, machine in scatterpp_run.testbed.machines.items():
        total = sum(
            instance.container.memory_bytes()
            for service in PIPELINE_ORDER
            for instance in scatterpp_run.pipeline.instances(service)
            if instance.container.machine is machine)
        assert machine.memory.in_use_bytes == pytest.approx(total)
        assert machine.memory.in_use_bytes <= \
            machine.memory.capacity_bytes


def test_client_books_balance(scatter_run):
    for stats in scatter_run.clients:
        assert set(stats.received) <= set(stats.sent)
        assert len(stats.e2e_latencies_s) == stats.frames_received
        assert all(latency > 0 for latency in stats.e2e_latencies_s)


def test_gpu_meters_return_to_idle(scatter_run):
    for machine in scatter_run.testbed.machines.values():
        for gpu in machine.gpus:
            assert gpu.meter.level == pytest.approx(0.0)
            assert gpu.slot.in_use == 0
        assert machine.cpu_meter.level == pytest.approx(0.0)


def test_network_delivery_books(scatter_run):
    network = scatter_run.testbed.network
    sent = sum(link.stats.packets_sent
               for link in network._links.values())
    dropped = sum(link.stats.packets_dropped
                  for link in network._links.values())
    assert network.stats_delivered + network.stats_lost > 0
    assert dropped <= sent
    assert network.stats_lost <= dropped  # multi-hop: one loss kills
