"""The ``REPRO_SIM_KERNEL`` backend selector.

The backend is chosen once, at ``repro.sim.kernel`` import time, so
every scenario runs in a fresh subprocess with a controlled
environment.  The contract under test:

- ``optimized`` (and unset) binds the calendar-queue kernel;
- ``reference`` binds the heap witness behind the same API surface
  (``schedule_batch``, ``wheel_stats``, the ``profile`` keyword) and
  produces byte-identical trace digests;
- ``compiled`` binds the ahead-of-time-compiled extension when built,
  and otherwise falls back to ``optimized`` LOUDLY (a
  ``RuntimeWarning`` plus a logger warning) — never silently;
- anything else fails fast with ``RuntimeError``.
"""

import json
import os
import pathlib
import subprocess
import sys

SRC_DIR = str(pathlib.Path(__file__).resolve().parents[1] / "src")

_PROBE = r"""
import json, sys, warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    from repro.sim import kernel
sim = kernel.Simulator()
sim.schedule(0.25, lambda: None)
sim.schedule_batch([(0.5, (lambda: None), ())])
sim.run()
print(json.dumps({
    "active": kernel.active_backend(),
    "requested": kernel.requested_backend(),
    "digest": sim.fingerprint(),
    "stats_empty": sim.wheel_stats() == {},
    "warnings": [str(w.message) for w in caught
                 if issubclass(w.category, RuntimeWarning)],
}))
"""


def _probe(backend=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SIM_KERNEL", None)
    if backend is not None:
        env["REPRO_SIM_KERNEL"] = backend
    proc = subprocess.run([sys.executable, "-c", _PROBE],
                          capture_output=True, text=True, env=env)
    return proc, (json.loads(proc.stdout.strip().splitlines()[-1])
                  if proc.returncode == 0 else None)


def test_default_backend_is_optimized():
    proc, probe = _probe()
    assert proc.returncode == 0, proc.stderr
    assert probe["active"] == probe["requested"] == "optimized"
    assert not probe["warnings"]
    assert not probe["stats_empty"]


def test_reference_backend_selected_and_digest_identical():
    ref_proc, ref = _probe("reference")
    opt_proc, opt = _probe("optimized")
    assert ref_proc.returncode == 0, ref_proc.stderr
    assert opt_proc.returncode == 0, opt_proc.stderr
    assert ref["active"] == ref["requested"] == "reference"
    assert opt["active"] == "optimized"
    # The witness exposes no wheel; its stats read as empty.
    assert ref["stats_empty"] and not opt["stats_empty"]
    # Same program, same bytes: the backend is invisible to traces.
    assert ref["digest"] == opt["digest"]
    assert not ref["warnings"]


def test_compiled_without_extension_falls_back_loudly():
    proc, probe = _probe("compiled")
    assert proc.returncode == 0, proc.stderr
    assert probe["requested"] == "compiled"
    if probe["active"] == "compiled":  # extension built (CI job)
        assert not probe["warnings"]
    else:
        assert probe["active"] == "optimized"
        assert any("compiled" in message and "fall" in message.lower()
                   for message in probe["warnings"]), probe["warnings"]


def test_invalid_backend_fails_fast():
    proc, __ = _probe("turbo")
    assert proc.returncode != 0
    assert "REPRO_SIM_KERNEL" in proc.stderr
    assert "turbo" in proc.stderr


def test_main_module_preparses_sim_kernel_flag(monkeypatch):
    """``python -m repro run --sim-kernel X`` must export the env var
    before ``repro.cli`` (and with it the kernel) is imported."""
    import importlib.util

    spec = importlib.util.find_spec("repro.__main__")
    source = pathlib.Path(spec.origin).read_text()
    assert "_preparse_sim_kernel(sys.argv[1:])" in source
    # The pre-parse helper itself, exercised in-process.
    namespace = {}
    exec(source.split("_preparse_sim_kernel(sys.argv[1:])")[0],
         namespace)
    preparse = namespace["_preparse_sim_kernel"]
    monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
    preparse(["run", "--sim-kernel", "reference"])
    assert os.environ["REPRO_SIM_KERNEL"] == "reference"
    monkeypatch.setenv("REPRO_SIM_KERNEL", "optimized")
    preparse(["run", "--sim-kernel=compiled"])
    assert os.environ["REPRO_SIM_KERNEL"] == "compiled"
