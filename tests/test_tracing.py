"""Tests for per-frame distributed tracing."""

import pytest

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.metrics.tracing import Tracer
from repro.scatter.config import PIPELINE_ORDER, baseline_configs


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
def test_span_recording_and_breakdown():
    tracer = Tracer()
    key = (0, 1)
    tracer.ensure(key, 0.0)
    tracer.record_span(key, 0.0, name="primary", kind="service",
                       instance="e1:1", start_s=0.001, end_s=0.005)
    tracer.record_span(key, 0.0, name="sift", kind="service",
                       instance="e1:2", start_s=0.006, end_s=0.018)
    tracer.record_delivery(key, 0.0, 0.040)

    trace = tracer.trace(key)
    assert trace.completed
    assert trace.e2e_s == pytest.approx(0.040)
    assert trace.total_s("service") == pytest.approx(0.016)
    assert trace.network_s == pytest.approx(0.024)
    breakdown = tracer.mean_breakdown_ms()
    assert breakdown["primary"] == pytest.approx(4.0)
    assert breakdown["sift"] == pytest.approx(12.0)
    assert breakdown["network"] == pytest.approx(24.0)


def test_incomplete_trace_loss_attribution():
    tracer = Tracer()
    tracer.ensure((0, 0), 0.0)  # lost before any span
    tracer.record_span((0, 1), 0.0, name="primary", kind="service",
                       instance="e1:1", start_s=0.0, end_s=0.004)
    tracer.record_span((0, 2), 0.0, name="primary", kind="service",
                       instance="e1:1", start_s=0.0, end_s=0.004)
    tracer.record_span((0, 2), 0.0, name="sift", kind="service",
                       instance="e1:2", start_s=0.005, end_s=0.017)
    losses = tracer.loss_by_stage()
    assert losses == {"(ingress)": 1, "primary": 1, "sift": 1}


def test_tracer_max_frames_cap():
    tracer = Tracer(max_frames=2)
    for frame in range(5):
        tracer.ensure((0, frame), 0.0)
    assert len(tracer) == 2


def test_invalid_span_rejected():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.record_span((0, 0), 0.0, name="x", kind="service",
                           instance="i", start_s=1.0, end_s=0.5)


def test_ordered_spans():
    tracer = Tracer()
    tracer.record_span((0, 0), 0.0, name="b", kind="service",
                       instance="i", start_s=0.5, end_s=0.6)
    tracer.record_span((0, 0), 0.0, name="a", kind="service",
                       instance="i", start_s=0.1, end_s=0.2)
    names = [s.name for s in tracer.trace((0, 0)).ordered_spans()]
    assert names == ["a", "b"]


# ----------------------------------------------------------------------
# End-to-end integration
# ----------------------------------------------------------------------
def test_scatter_traces_cover_pipeline():
    result = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=1, duration_s=5.0,
                                    tracing=True)
    tracer = result.tracer
    assert tracer is not None
    completed = tracer.completed_traces()
    assert completed
    trace = completed[0]
    stages = [span.name for span in trace.ordered_spans()
              if span.kind == "service"]
    # The frame visits every stage in pipeline order, and sift appears
    # twice: feature extraction plus matching's state fetch (the 2x
    # request load of §4, visible right in the trace).
    first_occurrence = list(dict.fromkeys(stages))
    assert first_occurrence == PIPELINE_ORDER
    assert stages.count("sift") == 2
    # The breakdown accounts most of the E2E latency to services.
    breakdown = tracer.mean_breakdown_ms()
    assert breakdown["sift"] > breakdown["lsh"]
    assert breakdown["network"] >= 0.0


def test_scatter_loss_attribution_under_load():
    result = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=4, duration_s=5.0,
                                    tracing=True)
    losses = result.tracer.loss_by_stage()
    # The dependency loop loses most frames at sift (ingress drops)
    # and lsh (the stage before matching's busy-wait drops).
    assert sum(losses.values()) > 0
    assert losses.get("sift", 0) + losses.get("lsh", 0) > 0


def test_scatterpp_traces_include_queue_spans():
    result = run_scatterpp_experiment(baseline_configs()["C1"],
                                      num_clients=2, duration_s=5.0,
                                      tracing=True)
    tracer = result.tracer
    completed = tracer.completed_traces()
    assert completed
    kinds = {span.kind for trace in completed for span in trace.spans}
    assert "queue" in kinds
    breakdown = tracer.mean_breakdown_ms()
    assert breakdown["queue"] >= 0.0
    # Every completed frame passed all five services.
    for trace in completed[:10]:
        services = {span.name for span in trace.spans
                    if span.kind == "service"}
        assert services == set(PIPELINE_ORDER)


def test_tracing_off_by_default():
    result = run_scatter_experiment(baseline_configs()["C1"],
                                    num_clients=1, duration_s=2.0)
    assert result.tracer is None
