"""Golden determinism-contract tests.

The contract: same seed ⇒ identical :class:`TraceDigest` fingerprint
and identical metrics, regardless of worker count, scheduling order,
or process boundary.  This file enforces it three ways:

* serial vs. sharded (1 and 4 workers) runs of the same small
  campaign must agree bit-for-bit;
* back-to-back serial runs in one process must agree (replay
  stability — no hidden global state);
* a cache-warm rerun (every cell replayed from the content-addressed
  cell cache) must agree with both, and with the goldens — caching is
  the third leg of the contract: serial ≡ sharded ≡ cached;
* digests must match the committed golden file
  (``tests/golden/determinism_digests.json``), catching
  cross-version drift.  If a PR *intentionally* changes simulation
  behaviour, regenerate with
  ``python tests/golden/regenerate_determinism.py`` and commit the
  diff — reviewers then see that the trajectory changed.

CI runs this module under a ``DETERMINISM_WORKERS`` matrix; locally
both 1 and 4 workers are exercised.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.campaign import Campaign, run_campaign

GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
               / "determinism_digests.json")
FLOW_GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
                    / "flow_digests.json")

#: The contract campaign: both pipelines, two cells each, two seeds —
#: small enough for tier-1, broad enough to cover the sidecar path.
CONTRACT_CAMPAIGN = Campaign(
    name="determinism", pipelines=("scatter", "scatterpp"),
    placements=("C1",), client_counts=(1, 2), duration_s=2.0,
    seeds=(0, 1))

#: The flow-on contract cells: the full substrate (admission +
#: batching + credits + pacing) walks its *own* pinned trajectory.
FLOW_CAMPAIGN = Campaign(
    name="determinism-flow", pipelines=("scatterpp-flow",),
    placements=("C1",), client_counts=(1, 2), duration_s=2.0,
    seeds=(0, 1))


def _worker_counts():
    env = os.environ.get("DETERMINISM_WORKERS")
    if env:
        return tuple(int(part) for part in env.split(","))
    return (1, 4)


def _digest_map(report):
    """Flatten a report's digests into {\"pipe/place/Nc/seedS\": hex}."""
    flat = {}
    for (pipeline, placement, clients), digests in \
            sorted(report.digests.items()):
        for seed, digest in sorted(digests.items()):
            flat[f"{pipeline}/{placement}/{clients}c/seed{seed}"] = \
                digest
    return flat


def _metric_map(report):
    """Exact (not approximate) per-cell metric values."""
    return {cell: {name: metric.values
                   for name, metric in sorted(metrics.items())}
            for cell, metrics in sorted(report.cells.items())}


@pytest.fixture(scope="module")
def serial_report():
    report = run_campaign(CONTRACT_CAMPAIGN)
    assert not report.failures
    return report


def test_serial_replay_is_stable(serial_report):
    replay = run_campaign(CONTRACT_CAMPAIGN)
    assert _digest_map(replay) == _digest_map(serial_report)
    assert _metric_map(replay) == _metric_map(serial_report)


@pytest.mark.parametrize("workers", _worker_counts())
def test_sharded_run_matches_serial_bit_for_bit(serial_report,
                                                workers):
    sharded = run_campaign(CONTRACT_CAMPAIGN, workers=workers)
    assert not sharded.failures
    # Identical trace digests: the event trajectories were the same.
    assert _digest_map(sharded) == _digest_map(serial_report)
    # Identical metrics, compared exactly (no tolerance): crossing a
    # process boundary must not perturb a single bit.
    assert _metric_map(sharded) == _metric_map(serial_report)


def test_every_task_produced_a_digest(serial_report):
    flat = _digest_map(serial_report)
    expected = (len(CONTRACT_CAMPAIGN.cells)
                * len(CONTRACT_CAMPAIGN.seeds))
    assert len(flat) == expected
    assert all(len(digest) == 32 for digest in flat.values())
    # Different seeds walk different trajectories.
    assert flat["scatter/C1/1c/seed0"] != flat["scatter/C1/1c/seed1"]


def test_digests_match_committed_golden_file(serial_report):
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _digest_map(serial_report)
    assert current == golden["digests"], (
        "Trace digests drifted from tests/golden/"
        "determinism_digests.json.  If this change to the simulation "
        "is intentional, regenerate the golden file with "
        "`python tests/golden/regenerate_determinism.py` and commit "
        "it; otherwise the determinism contract has been broken.")


# ----------------------------------------------------------------------
# Cell cache vs the contract: serial = sharded = cached, bit-for-bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers",
                         tuple(dict.fromkeys((0,) + _worker_counts())))
def test_cached_rerun_matches_serial_and_golden(serial_report,
                                                workers, tmp_path):
    """Three-way contract: a cold cache-on run and a fully-cached
    rerun both reproduce the uncached serial digests and metrics
    exactly, at every worker count, and still match the goldens."""
    cache_dir = str(tmp_path / "cells")
    tasks = (len(CONTRACT_CAMPAIGN.cells)
             * len(CONTRACT_CAMPAIGN.seeds))

    cold = run_campaign(CONTRACT_CAMPAIGN, workers=workers,
                        cache_dir=cache_dir)
    assert not cold.failures
    assert cold.cache["misses"] == tasks
    assert cold.cache["stored"] == tasks
    # Turning the cache *on* must not perturb a cold run...
    assert _digest_map(cold) == _digest_map(serial_report)
    assert _metric_map(cold) == _metric_map(serial_report)

    warm = run_campaign(CONTRACT_CAMPAIGN, workers=workers,
                        cache_dir=cache_dir)
    assert not warm.failures
    assert warm.cache["hits"] == tasks
    assert warm.cache["misses"] == 0
    assert warm.cache["stored"] == 0
    # ...and a replayed run is bit-identical to a computed one.
    assert _digest_map(warm) == _digest_map(serial_report)
    assert _metric_map(warm) == _metric_map(serial_report)

    golden = json.loads(GOLDEN_PATH.read_text())
    assert _digest_map(warm) == golden["digests"], (
        "Cache-replayed digests drifted from the committed goldens — "
        "the cell cache returned something a recompute would not.")


# ----------------------------------------------------------------------
# Flow-control substrate vs the contract
# ----------------------------------------------------------------------
def test_neutral_flow_config_matches_flow_none_bit_for_bit():
    """Every mechanism off == no flow config at all.

    The substrate's off-switches (admission ``always`` → no policy
    object, ``batch_max=1`` → bare-record dispatch, credits off → no
    advertiser process, pacing off → no pacer) must leave the event
    trajectory untouched, not merely the metrics.
    """
    from repro.experiments.runner import run_scatterpp_experiment
    from repro.flow import neutral_flow_config
    from repro.scatter.config import baseline_configs

    placement = baseline_configs()["C1"]
    base = run_scatterpp_experiment(placement, num_clients=2,
                                    duration_s=2.0, seed=0)
    neutral = run_scatterpp_experiment(placement, num_clients=2,
                                       duration_s=2.0, seed=0,
                                       flow=neutral_flow_config())
    assert neutral.trace_digest == base.trace_digest
    assert [c.received for c in neutral.clients] == \
        [c.received for c in base.clients]


def test_event_profiler_is_inert_on_a_real_cell():
    """``profile=True`` must not perturb the trajectory of a full
    experiment cell — same trace digest, same delivered frames — while
    still reporting a per-event-kind breakdown."""
    from repro.experiments.runner import run_scatterpp_experiment
    from repro.scatter.config import baseline_configs

    placement = baseline_configs()["C1"]
    base = run_scatterpp_experiment(placement, num_clients=2,
                                    duration_s=2.0, seed=0)
    profiled = run_scatterpp_experiment(placement, num_clients=2,
                                        duration_s=2.0, seed=0,
                                        profile=True)
    assert base.event_profile is None
    assert profiled.trace_digest == base.trace_digest
    assert [c.received for c in profiled.clients] == \
        [c.received for c in base.clients]
    report = profiled.event_profile
    assert report is not None and report["events"] > 0
    assert "Process._resume" in report["kinds"]


@pytest.fixture(scope="module")
def flow_report():
    report = run_campaign(FLOW_CAMPAIGN)
    assert not report.failures
    return report


def test_flow_on_digests_match_committed_golden_file(flow_report):
    golden = json.loads(FLOW_GOLDEN_PATH.read_text())
    assert _digest_map(flow_report) == golden["digests"], (
        "Flow-on trace digests drifted from tests/golden/"
        "flow_digests.json.  If this change to the flow substrate is "
        "intentional, regenerate with `python tests/golden/"
        "regenerate_determinism.py` and commit it; otherwise the "
        "substrate's determinism has been broken.")


def test_flow_on_walks_a_different_trajectory(flow_report,
                                              serial_report):
    """Flow on really engages: its digests differ from flow off."""
    flow_digests = set(_digest_map(flow_report).values())
    base_digests = set(_digest_map(serial_report).values())
    assert not flow_digests & base_digests


# ----------------------------------------------------------------------
# Optimizer-oracle cells are pinned to the same goldens
# ----------------------------------------------------------------------
def _neutral_c1_spec():
    """The C1 placement lifted into genome space, no scaler genes."""
    from repro.orchestra.optimize import Genome
    from repro.scatter.config import baseline_configs

    return Genome.from_placement(baseline_configs()["C1"]).encode()


def test_optimize_oracle_cells_replay_flow_goldens():
    """The optimizer's oracle runner is digest-neutral: a scaler-less
    genome cell walks *byte-identically* the committed flow-on golden
    trajectory for the same placement/clients/seed.  Zero events moved
    — the energy model is post-hoc and the autoscaler only attaches
    when the genome carries scaler genes."""
    spec = _neutral_c1_spec()
    campaign = Campaign(
        name="determinism-optimize", pipelines=("optimize",),
        placements=(spec,), client_counts=(1, 2), duration_s=2.0,
        seeds=(0, 1))
    report = run_campaign(campaign)
    assert not report.failures
    golden = json.loads(FLOW_GOLDEN_PATH.read_text())["digests"]
    digests = _digest_map(report)
    for key, digest in digests.items():
        flow_key = key.replace(f"optimize/{spec}",
                               "scatterpp-flow/C1")
        assert digest == golden[flow_key], (
            f"optimizer oracle moved events for {key}: the oracle "
            "must inherit the flow substrate's pinned trajectory "
            "(energy accounting is post-hoc; a scaler-less genome "
            "must not attach an autoscaler)")
    # Energy numbers rode along without touching the trajectory.
    for cell, summaries in report.summaries.items():
        for summary in summaries:
            assert summary["energy"]["total_j"] > 0.0
