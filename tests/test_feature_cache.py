"""Properties of the content-addressed feature cache.

Covers the correctness-by-construction story (hits return exactly the
inserted payload, frozen against mutation), the LRU bounds (entry
count and byte budget, eviction order, recency refresh), counter
accounting, environment gating, and — via fake campaign runners — the
per-process isolation that sharded campaigns rely on.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.experiments import campaign as campaign_mod
from repro.experiments.campaign import Campaign
from repro.experiments.parallel import (
    plan_tasks,
    run_tasks,
    shutdown_pool,
    warm_pool,
)
from repro.vision.cache import (
    DISABLE_ENV,
    FeatureCache,
    array_digest,
    config_fingerprint,
    default_feature_cache,
    reset_default_feature_cache,
)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def test_array_digest_is_content_addressed():
    base = np.arange(12, dtype=np.float64)
    assert array_digest(base) == array_digest(base.copy())
    changed = base.copy()
    changed[3] += 1e-12  # a single-ulp-scale change changes the key
    assert array_digest(changed) != array_digest(base)
    assert array_digest(base.reshape(3, 4)) != array_digest(base)
    assert array_digest(base.astype(np.float32)) != array_digest(base)


def test_array_digest_handles_non_contiguous_views():
    data = np.arange(24, dtype=np.float64).reshape(4, 6)
    view = data[:, ::2]
    assert array_digest(view) == array_digest(view.copy())


def test_config_fingerprint_mixes_arrays_and_scalars():
    basis = np.eye(3)
    fp = config_fingerprint("pca", 3, basis)
    assert fp == config_fingerprint("pca", 3, basis.copy())
    assert fp != config_fingerprint("pca", 4, basis)
    assert fp != config_fingerprint("pca", 3, basis * 2.0)
    # Separator prevents adjacent parts from concatenating ambiguously.
    assert config_fingerprint("ab", "c") != config_fingerprint("a", "bc")


# ----------------------------------------------------------------------
# Hit semantics
# ----------------------------------------------------------------------
def test_hit_returns_identical_content():
    cache = FeatureCache()
    payload = np.random.default_rng(0).standard_normal((5, 8))
    expected = payload.tobytes()
    stored = cache.put(("k",), payload)
    hit = cache.get(("k",))
    assert hit is stored
    assert hit.tobytes() == expected


def test_get_or_compute_matches_fresh_compute():
    cache = FeatureCache()
    rng = np.random.default_rng(1)
    fresh = rng.standard_normal(64)

    first = cache.get_or_compute(("x",), lambda: fresh.copy())
    second = cache.get_or_compute(
        ("x",), lambda: pytest.fail("hit must not recompute"))
    assert second is first
    assert second.tobytes() == fresh.tobytes()


def test_cached_payloads_are_frozen():
    cache = FeatureCache()
    keypoints = (np.arange(4.0), np.arange(3.0))
    frozen = cache.put(("kp",), keypoints)
    for array in frozen:
        with pytest.raises(ValueError):
            array[0] = 99.0
    hit = cache.get(("kp",))
    with pytest.raises(ValueError):
        hit[1][0] = 99.0


# ----------------------------------------------------------------------
# LRU bounds
# ----------------------------------------------------------------------
def test_eviction_is_least_recently_used_first():
    cache = FeatureCache(max_entries=3)
    for name in ("a", "b", "c"):
        cache.put((name,), np.zeros(1))
    cache.get(("a",))  # refresh: "b" is now the oldest
    cache.put(("d",), np.zeros(1))
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is not None  # ...which refreshes it again
    assert cache.keys() == (("c",), ("d",), ("a",))
    assert cache.stats().evictions == 1


def test_byte_budget_is_enforced():
    one_kb = np.zeros(128)  # 128 * 8 bytes
    cache = FeatureCache(max_entries=100, max_bytes=3 * one_kb.nbytes)
    for index in range(10):
        cache.put((f"k{index}",), one_kb.copy())
        assert cache.size_bytes <= cache.max_bytes
    assert len(cache) == 3
    assert cache.stats().evictions == 7


def test_oversized_payload_is_returned_but_not_retained():
    cache = FeatureCache(max_bytes=64)
    big = np.zeros(1024)
    returned = cache.put(("big",), big)
    assert returned is big
    assert not returned.flags.writeable  # still frozen for the caller
    assert len(cache) == 0
    assert cache.get(("big",)) is None


def test_reinserting_a_key_replaces_without_growth():
    cache = FeatureCache()
    cache.put(("k",), np.zeros(10))
    cache.put(("k",), np.zeros(20))
    assert len(cache) == 1
    assert cache.size_bytes == np.zeros(20).nbytes


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_counter_accounting_and_delta():
    cache = FeatureCache()
    cache.get(("miss",))
    cache.put(("k",), np.zeros(4))
    cache.get(("k",))
    before = cache.stats()
    assert (before.hits, before.misses, before.insertions) == (1, 1, 1)
    assert before.hit_rate == pytest.approx(0.5)

    cache.get(("k",))
    cache.get(("k",))
    delta = cache.stats().delta(before)
    assert (delta.hits, delta.misses, delta.insertions) == (2, 0, 0)
    assert delta.hit_rate == 1.0
    assert delta.entries == 1  # gauges report current state


def test_clear_drops_entries_but_keeps_counters():
    cache = FeatureCache()
    cache.put(("k",), np.zeros(4))
    cache.get(("k",))
    cache.clear()
    assert len(cache) == 0
    assert cache.size_bytes == 0
    assert cache.stats().hits == 1
    assert cache.stats().insertions == 1


def test_disabled_cache_counts_misses_and_stores_nothing():
    cache = FeatureCache(enabled=False)
    frozen = cache.put(("k",), np.zeros(4))
    assert not frozen.flags.writeable
    assert cache.get(("k",)) is None
    assert len(cache) == 0
    stats = cache.stats()
    assert stats.misses == 1 and stats.insertions == 0


def test_validation():
    with pytest.raises(ValueError):
        FeatureCache(max_entries=0)
    with pytest.raises(ValueError):
        FeatureCache(max_bytes=0)


# ----------------------------------------------------------------------
# Process-default cache + environment gating
# ----------------------------------------------------------------------
def test_default_cache_is_a_per_process_singleton():
    reset_default_feature_cache()
    try:
        assert default_feature_cache() is default_feature_cache()
    finally:
        reset_default_feature_cache()


def test_env_variable_disables_default_cache(monkeypatch):
    monkeypatch.setenv(DISABLE_ENV, "1")
    reset_default_feature_cache()
    try:
        assert not default_feature_cache().enabled
    finally:
        # monkeypatch restores the environment; dropping the singleton
        # makes the next consumer re-read it.
        reset_default_feature_cache()


# ----------------------------------------------------------------------
# Per-process isolation under a sharded campaign
# ----------------------------------------------------------------------
def _cache_probe_runner(placement, *, num_clients, duration_s, seed):
    """Fake cell: touch one shared key in the worker's default cache."""
    cache = default_feature_cache()
    before = cache.stats()
    cache.get_or_compute(("shared-probe",), lambda: np.arange(16.0))
    time.sleep(0.1)  # keep this worker busy so peers pick up tasks
    delta = cache.stats().delta(before)
    return {"trace_digest": f"probe-{seed}", "pid": os.getpid(),
            "cache": delta.as_dict()}


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fake-runner injection into pool workers requires fork")
def test_worker_caches_are_isolated_per_process(monkeypatch):
    """Every worker process pays exactly one cold miss for a shared key.

    If caches leaked across the process boundary, a later worker would
    observe a hit on its first lookup; if a worker's cache leaked
    *into* later cells on the same worker, those cells would observe
    extra misses.  Both directions are pinned here.
    """
    monkeypatch.setitem(campaign_mod.RUNNERS, "scatter",
                        _cache_probe_runner)
    campaign = Campaign(
        name="iso", pipelines=("scatter",), placements=("C1",),
        client_counts=(1, 2), duration_s=0.1,
        seeds=(0, 1, 2, 3))
    # The probe needs (a) workers forked *after* the monkeypatch —
    # drop any earlier pool — and (b) a genuine multi-worker fan-out,
    # so warm an exact-size pool (overrides the cpu-count cap).
    shutdown_pool()
    warm_pool(4)
    try:
        outcomes = run_tasks(plan_tasks(campaign), workers=4)
    finally:
        shutdown_pool()
    assert all(outcome.ok for outcome in outcomes)

    by_pid = {}
    for outcome in outcomes:
        by_pid.setdefault(outcome.summary["pid"], []).append(
            outcome.summary["cache"])
    assert len(by_pid) >= 2  # the pool really fanned out
    for deltas in by_pid.values():
        assert sum(d["misses"] for d in deltas) == 1
        assert sum(d["insertions"] for d in deltas) == 1
        assert sum(d["hits"] for d in deltas) == len(deltas) - 1
