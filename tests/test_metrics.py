"""Unit tests for QoS and hardware metrics."""

import pytest

from repro.cluster import Container, Machine
from repro.cluster.gpu import RTX_2080
from repro.cluster.machine import GB
from repro.metrics import (
    CacheStats,
    ClientStats,
    HardwareMonitor,
    PercentileSketch,
    StageProfiler,
    safe_percentile,
    summarize,
)
from repro.metrics.summary import SampleReservoir
from repro.sim import Simulator


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------
def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.median == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0


def test_summarize_empty():
    summary = summarize([])
    assert summary.count == 0
    assert summary.mean == 0.0


def test_summarize_p95():
    summary = summarize(range(100))
    assert summary.p95 == pytest.approx(94.05)


def test_summarize_ignores_non_finite_samples():
    clean = summarize([1.0, 2.0, 3.0])
    poisoned = summarize([1.0, float("nan"), 2.0, float("inf"), 3.0])
    assert poisoned == clean
    assert poisoned.count == 3


def test_summarize_all_non_finite_is_empty():
    summary = summarize([float("nan"), float("inf")])
    assert summary.count == 0
    assert summary.mean == 0.0


# ----------------------------------------------------------------------
# safe_percentile
# ----------------------------------------------------------------------
def test_safe_percentile_empty_returns_none():
    assert safe_percentile([], 95.0) is None


def test_safe_percentile_all_nan_returns_none():
    assert safe_percentile([float("nan"), float("nan")], 50.0) is None


def test_safe_percentile_filters_non_finite():
    values = [1.0, float("nan"), 3.0, float("inf")]
    assert safe_percentile(values, 50.0) == pytest.approx(2.0)
    assert safe_percentile(range(100), 95.0) == pytest.approx(94.05)


# ----------------------------------------------------------------------
# summarize / safe_percentile on sketches (reservoir drop-ins)
# ----------------------------------------------------------------------
def test_summarize_empty_sketch_matches_empty_list():
    assert summarize(PercentileSketch()) == summarize([])


def test_summarize_single_sample_sketch_is_exact():
    sketch = PercentileSketch()
    sketch.append(0.042)
    summary = summarize(sketch)
    assert summary.count == 1
    assert summary.mean == pytest.approx(0.042)
    assert summary.median == pytest.approx(0.042, rel=1e-12)
    assert summary.p95 == pytest.approx(0.042, rel=1e-12)
    assert summary.minimum == pytest.approx(0.042)
    assert summary.maximum == pytest.approx(0.042)
    assert summary.overflow_ratio == 0.0


def test_summarize_sketch_matches_list_within_alpha():
    values = [0.010 * (i + 1) for i in range(100)]
    sketch = PercentileSketch()
    sketch.extend(values)
    from_list = summarize(values)
    from_sketch = summarize(sketch)
    assert from_sketch.count == from_list.count
    assert from_sketch.mean == pytest.approx(from_list.mean)
    assert from_sketch.minimum == from_list.minimum
    assert from_sketch.maximum == from_list.maximum
    assert from_sketch.median == pytest.approx(from_list.median,
                                               rel=0.02)
    assert from_sketch.p95 == pytest.approx(from_list.p95, rel=0.02)


def test_summarize_sketch_skips_non_finite():
    sketch = PercentileSketch()
    sketch.extend([1.0, float("nan"), 2.0, float("inf"), 3.0])
    summary = summarize(sketch)
    assert summary.count == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0


def test_summarize_all_non_finite_sketch_is_empty():
    sketch = PercentileSketch()
    sketch.extend([float("nan"), float("inf")])
    assert summarize(sketch) == summarize([])


def test_safe_percentile_on_sketch():
    sketch = PercentileSketch()
    assert safe_percentile(sketch, 95.0) is None
    sketch.extend(range(1, 101))
    assert safe_percentile(sketch, 50.0) == pytest.approx(50.0,
                                                          rel=0.03)
    assert safe_percentile(sketch, 95.0) == pytest.approx(95.0,
                                                          rel=0.03)


def test_overflow_ratio_consistent_between_reservoir_and_sketch():
    """The same overloaded stream reports overflow the same way
    whether it lands in a bounded reservoir (subsampling) or a
    bin-capped sketch (bound-collapsing): zero when nothing was
    dropped, positive and equal to the affected fraction otherwise."""
    reservoir = SampleReservoir(maxlen=10)
    reservoir.extend(float(i) for i in range(40))
    assert reservoir.overflow_ratio == pytest.approx(30 / 40)
    assert summarize(reservoir).overflow_ratio == \
        reservoir.overflow_ratio

    healthy = PercentileSketch()
    healthy.extend(range(1, 41))
    assert healthy.overflow_ratio == 0.0
    assert summarize(healthy).overflow_ratio == 0.0

    cramped = PercentileSketch(alpha=0.05, max_bins=4)
    cramped.extend([10.0 ** k for k in range(12)])
    assert cramped.collapsed > 0
    assert cramped.overflow_ratio == pytest.approx(
        cramped.collapsed / cramped.count)
    assert summarize(cramped).overflow_ratio == \
        cramped.overflow_ratio


def test_summary_overflow_ratio_defaults_to_zero_for_lists():
    assert summarize([1.0, 2.0]).overflow_ratio == 0.0


# ----------------------------------------------------------------------
# CacheStats
# ----------------------------------------------------------------------
def test_cache_stats_hit_rate_none_without_lookups():
    stats = CacheStats(insertions=3, entries=3, size_bytes=96)
    assert stats.lookups == 0
    assert stats.hit_rate is None
    assert stats.as_dict()["hit_rate"] is None


def test_cache_stats_hit_rate_and_dict():
    stats = CacheStats(hits=3, misses=1, insertions=1, entries=1,
                       size_bytes=64)
    assert stats.lookups == 4
    assert stats.hit_rate == pytest.approx(0.75)
    payload = stats.as_dict()
    assert payload["hits"] == 3
    assert payload["hit_rate"] == pytest.approx(0.75)


def test_cache_stats_delta_subtracts_counters_keeps_gauges():
    earlier = CacheStats(hits=10, misses=5, insertions=5, evictions=1,
                         entries=4, size_bytes=100)
    later = CacheStats(hits=13, misses=6, insertions=7, evictions=2,
                       entries=6, size_bytes=150)
    delta = later.delta(earlier)
    assert (delta.hits, delta.misses) == (3, 1)
    assert (delta.insertions, delta.evictions) == (2, 1)
    assert (delta.entries, delta.size_bytes) == (6, 150)


# ----------------------------------------------------------------------
# StageProfiler
# ----------------------------------------------------------------------
def test_profiler_accumulates_calls_and_time():
    profiler = StageProfiler()
    with profiler.stage("kernel"):
        pass
    profiler.record("kernel", 5_000_000)
    record = profiler.snapshot()["kernel"]
    assert record.calls == 2
    assert record.total_ms >= 5.0
    assert record.mean_ms == pytest.approx(record.total_ms / 2)


def test_profiler_disabled_records_nothing():
    profiler = StageProfiler(enabled=False)
    with profiler.stage("kernel"):
        pass
    profiler.record("kernel", 123)
    assert profiler.snapshot() == {}


def test_profiler_delta_omits_unchanged_stages():
    profiler = StageProfiler()
    profiler.record("warm", 1000)
    before = profiler.snapshot()
    profiler.record("hot", 2000)
    delta = profiler.delta(before)
    assert set(delta) == {"hot"}
    assert delta["hot"].calls == 1


def test_profiler_counts_exceptions_and_resets():
    profiler = StageProfiler()
    with pytest.raises(RuntimeError):
        with profiler.stage("failing"):
            raise RuntimeError("boom")
    assert profiler.snapshot()["failing"].calls == 1
    profiler.reset()
    assert profiler.snapshot() == {}


def test_profiler_as_dict_and_empty_mean():
    profiler = StageProfiler()
    profiler.record("stage", 2_000_000)
    payload = profiler.as_dict()["stage"]
    assert payload["calls"] == 1
    assert payload["total_ms"] == pytest.approx(2.0)
    assert StageProfiler().as_dict() == {}
    assert CacheStats().delta(CacheStats()).hit_rate is None


# ----------------------------------------------------------------------
# ClientStats
# ----------------------------------------------------------------------
def test_client_stats_success_and_latency():
    stats = ClientStats(client_id=0)
    for frame in range(10):
        stats.record_sent(frame, frame / 30.0)
    for frame in range(0, 10, 2):
        stats.record_received(frame, frame / 30.0 + 0.040)
    assert stats.frames_sent == 10
    assert stats.frames_received == 5
    assert stats.success_rate() == pytest.approx(0.5)
    assert stats.e2e_latency().mean == pytest.approx(0.040)


def test_client_stats_fps_over_duration():
    stats = ClientStats(client_id=0)
    for frame in range(30):
        stats.record_sent(frame, frame / 30.0)
        stats.record_received(frame, frame / 30.0 + 0.02)
    assert stats.fps(duration_s=1.0) == pytest.approx(30.0)


def test_client_stats_jitter_zero_for_regular_arrivals():
    stats = ClientStats(client_id=0)
    for frame in range(10):
        stats.record_sent(frame, frame * 0.1)
        stats.record_received(frame, frame * 0.1 + 0.01)
    assert stats.jitter_s() == pytest.approx(0.0, abs=1e-12)


def test_client_stats_jitter_positive_for_irregular_arrivals():
    stats = ClientStats(client_id=0)
    arrivals = [0.0, 0.1, 0.15, 0.4, 0.45]
    for frame, arrival in enumerate(arrivals):
        stats.record_sent(frame, arrival - 0.01)
        stats.record_received(frame, arrival)
    assert stats.jitter_s() > 0.05


def test_client_stats_duplicate_result_ignored():
    stats = ClientStats(client_id=0)
    stats.record_sent(0, 0.0)
    stats.record_received(0, 0.1)
    stats.record_received(0, 0.2)
    assert stats.frames_received == 1
    assert len(stats.e2e_latencies_s) == 1


def test_client_stats_errors():
    stats = ClientStats(client_id=0)
    stats.record_sent(0, 0.0)
    with pytest.raises(ValueError):
        stats.record_sent(0, 1.0)
    with pytest.raises(ValueError):
        stats.record_received(99, 1.0)


def test_client_stats_fps_series():
    stats = ClientStats(client_id=0)
    for frame in range(60):
        stats.record_sent(frame, frame / 30.0)
        stats.record_received(frame, frame / 30.0 + 0.01)
    series = stats.fps_series(bucket_s=1.0)
    assert len(series) >= 2
    assert series[0] == pytest.approx(30.0, rel=0.1)


def test_client_stats_fps_series_validation():
    with pytest.raises(ValueError):
        ClientStats(client_id=0).fps_series(bucket_s=0.0)


# ----------------------------------------------------------------------
# HardwareMonitor
# ----------------------------------------------------------------------
def make_monitored_machine():
    sim = Simulator()
    machine = Machine(sim, "e1", cpu_cores=4, memory_gb=64,
                      gpu_architecture=RTX_2080, gpu_count=2)
    monitor = HardwareMonitor(sim, [machine], interval_s=1.0)
    return sim, machine, monitor


def test_monitor_samples_on_interval():
    sim, machine, monitor = make_monitored_machine()
    monitor.start()
    sim.run(until=5.5)
    assert len(monitor.samples) == 5
    assert monitor.samples[0].timestamp_s == pytest.approx(1.0)


def test_monitor_cpu_utilization_window():
    sim, machine, monitor = make_monitored_machine()
    monitor.start()

    def work():
        yield from machine.execute_cpu(2.0)  # 1 core busy 0..2 s

    sim.spawn(work())
    sim.run(until=3.5)
    # First two windows: 1 of 4 cores busy = 25%; third: idle.
    assert monitor.samples[0].cpu["e1"] == pytest.approx(0.25)
    assert monitor.samples[1].cpu["e1"] == pytest.approx(0.25)
    assert monitor.samples[2].cpu["e1"] == pytest.approx(0.0)


def test_monitor_gpu_utilization_mean_over_devices():
    sim, machine, monitor = make_monitored_machine()
    monitor.start()

    def work():
        yield from machine.gpus[0].execute(1.0)

    sim.spawn(work())
    sim.run(until=1.5)
    # 1 of 2 GPUs fully busy in the window = 50%.
    assert monitor.samples[0].gpu["e1"] == pytest.approx(0.5)


def test_monitor_container_memory_tracking():
    sim, machine, monitor = make_monitored_machine()
    container = Container(machine, "sift", base_memory_bytes=GB)
    container.start()
    monitor.watch(container)
    monitor.start()

    def grow():
        yield sim.timeout(1.5)
        container.allocate_state(GB)

    sim.spawn(grow())
    sim.run(until=3.5)
    assert monitor.mean_container_memory_gb(container.id) > 1.0
    assert monitor.peak_container_memory_gb(container.id) == \
        pytest.approx(2.0)


def test_monitor_service_memory_sums_replicas():
    sim, machine, monitor = make_monitored_machine()
    first = Container(machine, "sift", base_memory_bytes=GB)
    second = Container(machine, "sift", base_memory_bytes=GB)
    for container in (first, second):
        container.start()
        monitor.watch(container)
    monitor.start()
    sim.run(until=2.5)
    assert monitor.service_memory_gb()["sift"] == pytest.approx(2.0)


def test_monitor_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        HardwareMonitor(sim, [], interval_s=0.0)


def test_monitor_watch_idempotent():
    sim, machine, monitor = make_monitored_machine()
    container = Container(machine, "x", base_memory_bytes=GB)
    monitor.watch(container)
    monitor.watch(container)
    assert len(monitor.containers) == 1


# ----------------------------------------------------------------------
# energy model
# ----------------------------------------------------------------------
def test_power_model_validates_tables():
    from repro.metrics.energy import PowerModel

    with pytest.raises(ValueError):
        PowerModel(idle_w={"e1": -1.0})
    with pytest.raises(ValueError):
        PowerModel(device_idle_w=-0.5)


def test_power_model_active_watts_gpu_vs_cpu():
    from repro.metrics.energy import DEFAULT_POWER_MODEL
    from repro.scatter.config import GPU_INTENSITY

    model = DEFAULT_POWER_MODEL
    # GPU service draw scales with its intensity share.
    assert model.active_watts("e1", "sift") == pytest.approx(
        model.gpu_active_w["e1"] * GPU_INTENSITY["sift"])
    # The CPU-only primary stage draws from the CPU table instead.
    assert model.active_watts("e1", "primary") == pytest.approx(
        model.cpu_active_w["e1"])


def test_energy_summary_conserves_joules():
    """Total joules must equal device + idle + per-stage exactly (the
    summation order the model documents), on a real C1 run."""
    from repro.experiments.runner import run_scatterpp_flow_experiment
    from repro.metrics.energy import energy_summary
    from repro.scatter.config import PIPELINE_ORDER, baseline_configs

    result = run_scatterpp_flow_experiment(
        baseline_configs()["C1"], num_clients=1, duration_s=2.0,
        seed=0)
    energy = energy_summary(result)
    total = (energy["device_j"] + energy["idle_j"]
             + sum(energy["per_stage_j"][s] for s in PIPELINE_ORDER))
    assert energy["total_j"] == total
    assert sorted(energy["per_stage_j"]) == sorted(PIPELINE_ORDER)
    assert energy["machines"] == ["e1"]
    assert energy["joules_per_frame"] > 0.0
    assert energy["cost_units"] > 0.0
    assert energy["frames_received"] > 0


def test_energy_summary_zero_frames_is_safe():
    from repro.metrics.energy import energy_summary
    from repro.scatter.config import baseline_configs

    class FakeClient:
        frames_sent = 0
        frames_received = 0

    class FakeResult:
        config_name = "C1"
        num_clients = 1
        duration_s = 1.0
        clients = [FakeClient()]

        class pipeline:
            placement = baseline_configs()["C1"]

            @staticmethod
            def instances(service):
                return []

        class testbed:
            machines = {}

    energy = energy_summary(FakeResult())
    assert energy["joules_per_frame"] is None
    assert energy["total_j"] > 0.0  # idle + device idle still accrue


def test_placement_estimate_reports_energy():
    from repro.orchestra.placement import PlacementOptimizer

    optimizer = PlacementOptimizer()
    for estimate in optimizer.search():
        assert estimate.watts > 0.0
        assert estimate.joules_per_frame > 0.0
    by_energy = optimizer.best("energy")
    assert by_energy.joules_per_frame == min(
        e.joules_per_frame for e in optimizer.search())
