"""Tests for the campaign runner."""

import json

import pytest

from repro.experiments.campaign import (
    Campaign,
    CampaignReport,
    render_report,
    resolve_placement,
    run_campaign,
)


def tiny_campaign(**overrides):
    defaults = dict(name="test", pipelines=("scatter",),
                    placements=("C1",), client_counts=(1,),
                    duration_s=4.0, seeds=(0,))
    defaults.update(overrides)
    return Campaign(**defaults)


def test_campaign_validation():
    with pytest.raises(ValueError):
        tiny_campaign(pipelines=("teleport",))
    with pytest.raises(ValueError):
        tiny_campaign(placements=())
    with pytest.raises(ValueError):
        tiny_campaign(placements=("C99",))
    with pytest.raises(ValueError):
        tiny_campaign(duration_s=0.0)
    with pytest.raises(ValueError):
        tiny_campaign(seeds=())


def test_resolve_placement_variants():
    assert resolve_placement("C12").name == "C12"
    assert resolve_placement("cloud").name == "cloud"
    assert resolve_placement("1,2,1,1,2").replica_vector() == \
        [1, 2, 1, 1, 2]
    with pytest.raises(ValueError):
        resolve_placement("atlantis")


def test_cells_enumeration():
    campaign = tiny_campaign(pipelines=("scatter", "scatterpp"),
                             placements=("C1", "C2"),
                             client_counts=(1, 4))
    assert len(campaign.cells) == 8
    assert ("scatterpp", "C2", 4) in campaign.cells


def test_run_campaign_collects_metrics():
    campaign = tiny_campaign(pipelines=("scatter", "scatterpp"),
                             client_counts=(1, 2))
    lines = []
    report = run_campaign(campaign, progress=lines.append)
    assert len(report.cells) == 4
    assert len(lines) == 4
    fps = report.cells[("scatter", "C1", 1)]["fps"]
    assert fps.mean > 20.0
    # scAtteR++ at 2 clients beats scAtteR at 2 clients.
    assert report.cells[("scatterpp", "C1", 2)]["fps"].mean > \
        report.cells[("scatter", "C1", 2)]["fps"].mean


def test_run_campaign_persists_to_store(tmp_path):
    campaign = tiny_campaign()
    run_campaign(campaign, store_dir=str(tmp_path / "store"))
    path = tmp_path / "store" / "test__scatter__C1__1c.json"
    assert path.exists()
    stored = json.loads(path.read_text())
    assert stored["pipeline"] == "scatter"
    assert stored["clients"] == 1
    assert stored["fps"]["mean"] > 0


def test_render_report_format():
    campaign = tiny_campaign(seeds=(0, 1))
    report = run_campaign(campaign)
    text = render_report(report)
    assert "# Campaign: test" in text
    assert "## scatter" in text
    assert "±" in text  # replicated cells show confidence widths
    with pytest.raises(ValueError):
        render_report(report, metrics=("nonsense",))


def test_render_report_skips_missing_cells():
    campaign = tiny_campaign(placements=("C1", "C2"))
    report = CampaignReport(campaign=campaign)
    # Only one of the two cells is present.
    full = run_campaign(tiny_campaign())
    report.cells.update(full.cells)
    text = render_report(report)
    assert "C1" in text
