"""Packaging entry point, plus the optional compiled event kernel.

The compiled kernel is strictly opt-in and never a hard dependency:

    REPRO_BUILD_SIM_EXT=1 python setup.py build_ext --inplace

copies ``src/repro/sim/_kernel_impl.py`` to
``src/repro/sim/_kernel_compiled.py`` (gitignored) and ahead-of-time
compiles it — mypyc first, Cython as a fallback — into the extension
``repro.sim._kernel_compiled`` that ``REPRO_SIM_KERNEL=compiled``
selects at import.  Both compilers consume the *same source* the
pure-Python backend runs, so the ``(when, seq)`` determinism contract
carries over verbatim; the dual-kernel equivalence suites and the
golden-digest tests are the gate, not trust.

Without ``REPRO_BUILD_SIM_EXT=1`` (or when neither compiler is
installed) this is a plain pure-Python ``setup()`` — the selector
falls back loudly at import and everything still runs.
"""

import os
import pathlib
import shutil
import sys

from setuptools import setup

_SIM_DIR = pathlib.Path(__file__).parent / "src" / "repro" / "sim"


def _compiled_ext_modules():
    """Build spec for ``repro.sim._kernel_compiled``, if asked + able."""
    if os.environ.get("REPRO_BUILD_SIM_EXT") != "1":
        return []
    source = _SIM_DIR / "_kernel_impl.py"
    target = _SIM_DIR / "_kernel_compiled.py"
    shutil.copyfile(source, target)
    try:
        from mypyc.build import mypycify
    except ImportError:
        pass
    else:
        try:
            return mypycify([str(target)])
        except Exception as exc:  # pragma: no cover - toolchain specific
            print(f"setup.py: mypyc build failed ({exc}); "
                  "trying Cython", file=sys.stderr)
    try:
        from Cython.Build import cythonize
    except ImportError:
        print("setup.py: REPRO_BUILD_SIM_EXT=1 but neither mypyc nor "
              "Cython is installed; skipping the compiled kernel "
              "(pure-Python backends remain fully functional)",
              file=sys.stderr)
        # Don't leave a stale plain-.py copy behind — the selector
        # would reject it, but loudly, on every import.
        target.unlink()
        return []
    return cythonize([str(target)], language_level=3)


setup(ext_modules=_compiled_ext_modules())
