#!/usr/bin/env python3
"""Replica-scaling study: which services are worth replicating?

Reproduces the reasoning of the paper's §4 "Service Scalability" and
§5 interactively: deploys scAtteR and scAtteR++ under several replica
vectors (in pipeline order [primary, sift, encoding, lsh, matching]),
sweeps the client count, and prints where each configuration's
capacity runs out — including the state-tie-in effect that caps what
replication buys the *stateful* pipeline.

Run:  python examples/scaling_study.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import scaling_config, uniform_config

REPLICA_VECTORS = (
    [1, 1, 1, 1, 1],
    [2, 2, 1, 1, 1],   # replicate the ingress (paper: hurts!)
    [1, 2, 1, 1, 2],   # replicate the bottleneck pair
    [1, 2, 2, 1, 2],   # the paper's best scAtteR configuration
    [1, 3, 2, 1, 3],   # scAtteR++'s scaled deployment (Fig. 7)
)

CLIENTS = (1, 2, 4, 6, 8)


def main() -> None:
    for pipeline, runner in (("scAtteR", run_scatter_experiment),
                             ("scAtteR++", run_scatterpp_experiment)):
        rows = []
        for vector in REPLICA_VECTORS:
            if vector == [1, 1, 1, 1, 1]:
                config = uniform_config("baseline-E2", "e2")
            else:
                config = scaling_config(vector)
            fps_by_clients = []
            for clients in CLIENTS:
                result = runner(config, num_clients=clients,
                                duration_s=20.0, seed=0)
                fps_by_clients.append(result.mean_fps())
            rows.append([config.name] + fps_by_clients)
        print(f"\n=== {pipeline}: mean per-client FPS ===")
        print(format_table(
            ["replicas"] + [f"{n} client(s)" for n in CLIENTS], rows))

    print(
        "\nReading the tables:\n"
        " * scAtteR gains little from replication — fetches are tied\n"
        "   to the sift replica holding the frame's state, and\n"
        "   replicating the ingress only floods the single-instance\n"
        "   tail of the pipeline (insight III).\n"
        " * scAtteR++ converts the same replicas into real capacity:\n"
        "   the stateless sift lets round-robin balancing spread load\n"
        "   and the [1,3,2,1,3] deployment carries roughly twice the\n"
        "   clients at the same framerate (paper: 2.8x, Fig. 7).")


if __name__ == "__main__":
    main()
