#!/usr/bin/env python3
"""Quickstart: deploy scAtteR and scAtteR++ and compare their QoS.

Builds the paper's edge testbed (E1, E2, client NUCs), deploys the
five-service pipeline in the C12 placement ([E1, E1, E2, E2, E2]),
replays the 30 FPS client video against it with 1-4 concurrent
clients, and prints frame rate / latency / success — first for
scAtteR, then for the redesigned scAtteR++.

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.experiments.reporting import format_table
from repro.scatter.config import baseline_configs


def main() -> None:
    placement = baseline_configs()["C12"]
    print(f"Placement {placement.name}: "
          f"{ {s: m for s, m in placement.placements.items()} }\n")

    rows = []
    for pipeline, runner in (("scAtteR", run_scatter_experiment),
                             ("scAtteR++", run_scatterpp_experiment)):
        for clients in (1, 2, 4):
            result = runner(placement, num_clients=clients,
                            duration_s=30.0, seed=0)
            rows.append([pipeline, clients,
                         result.mean_fps(),
                         result.success_rate(),
                         result.mean_e2e_ms(),
                         result.mean_jitter_ms()])

    print(format_table(
        ["pipeline", "clients", "FPS", "success", "E2E(ms)",
         "jitter(ms)"], rows))

    scatter4 = rows[2][2]
    pp4 = rows[5][2]
    print(f"\nscAtteR++ at 4 clients delivers "
          f"{pp4 / scatter4:.1f}x the framerate of scAtteR — the "
          f"stateless redesign plus queue sidecars at work (paper §5).")


if __name__ == "__main__":
    main()
