#!/usr/bin/env python3
"""Self-healing: the orchestrator redeploys a crashed service.

The paper relies on Oakestra to "automatically re-deploy services
upon failures" (§3.2).  This example crashes the sift container
mid-run, shows the client framerate collapse while the service is
gone, and the recovery once the orchestrator's watchdog replaces it.

Run:  python examples/failure_recovery.py
"""

from repro.cluster.testbed import build_paper_testbed
from repro.experiments.reporting import format_table
from repro.orchestra.orchestrator import Orchestrator
from repro.scatter.client import ArClient
from repro.scatter.config import baseline_configs
from repro.scatter.pipeline import ScatterPipeline
from repro.sim import RngRegistry, Simulator

RUN_S = 45.0
CRASH_AT_S = 15.0


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(0)
    testbed = build_paper_testbed(sim, rng, num_clients=1)
    orchestrator = Orchestrator(testbed, redeploy_delay_s=2.0)
    pipeline = ScatterPipeline(testbed, orchestrator,
                               baseline_configs()["C1"])
    pipeline.deploy()
    orchestrator.start()

    client = ArClient(client_id=0, node="nuc0",
                      network=testbed.network,
                      registry=orchestrator.registry,
                      rng=rng.stream("client.0"))
    client.start(RUN_S)

    def chaos():
        yield sim.timeout(CRASH_AT_S)
        victim = orchestrator.instances("sift")[0]
        print(f"t={sim.now:5.1f}s  CRASH: killing {victim.container.id} "
              f"on {victim.address.node}")
        orchestrator.fail_instance(victim)

    sim.spawn(chaos())
    sim.run(until=RUN_S + 1.0)

    series = client.stats.fps_series(bucket_s=3.0)
    rows = [[f"{i * 3:4.0f}-{i * 3 + 3:.0f}s", fps,
             "<- crash window" if CRASH_AT_S <= i * 3 < CRASH_AT_S + 6
             else ""]
            for i, fps in enumerate(series)]
    print(format_table(["window", "FPS", ""], rows))
    print(f"\nredeploys performed by the orchestrator: "
          f"{orchestrator.redeploy_count}")
    print(f"overall success rate: {client.stats.success_rate():.2f} "
          f"(the gap is the detection+redeploy window)")


if __name__ == "__main__":
    main()
