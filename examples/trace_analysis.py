#!/usr/bin/env python3
"""Where does the time go?  Per-frame tracing of both pipelines.

Runs scAtteR and scAtteR++ with distributed tracing enabled and
prints, for each: the mean per-frame latency breakdown (per service,
sidecar queueing, network), one concrete frame's span timeline, and —
for the frames that never came back — the stage they died after.

The traces make the paper's §4 findings directly visible: sift appears
twice in every scAtteR trace (feature extraction + matching's state
fetch), and under load most frames die right after ``primary`` (sift's
busy ingress) or after ``lsh`` (matching's busy-wait window).

Run:  python examples/trace_analysis.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    run_scatter_experiment,
    run_scatterpp_experiment,
)
from repro.scatter.config import baseline_configs


def show(result, title: str) -> None:
    tracer = result.tracer
    print(f"\n=== {title}: {result.num_clients} clients, "
          f"{result.mean_fps():.1f} FPS, "
          f"success {result.success_rate():.0%} ===")

    breakdown = tracer.mean_breakdown_ms()
    print("\nmean per-frame latency breakdown:")
    print(format_table(["component", "ms/frame"],
                       sorted(breakdown.items(),
                              key=lambda kv: -kv[1])))

    completed = tracer.completed_traces()
    if completed:
        trace = completed[len(completed) // 2]
        print(f"\ntimeline of frame {trace.key} "
              f"(E2E {1000 * trace.e2e_s:.1f} ms):")
        rows = []
        for span in trace.ordered_spans():
            rows.append([span.name, span.kind, span.instance,
                         1000 * (span.start_s - trace.created_s),
                         1000 * span.duration_s])
        print(format_table(
            ["stage", "kind", "instance", "t+ms", "ms"], rows))

    losses = tracer.loss_by_stage()
    if losses:
        print("\nlost frames by the last stage they passed:")
        print(format_table(["last stage", "frames"],
                           sorted(losses.items(),
                                  key=lambda kv: -kv[1])))


def main() -> None:
    config = baseline_configs()["C12"]
    scatter = run_scatter_experiment(config, num_clients=3,
                                     duration_s=20.0, tracing=True)
    show(scatter, "scAtteR (stateful, drop-when-busy)")
    scatterpp = run_scatterpp_experiment(config, num_clients=3,
                                         duration_s=20.0, tracing=True)
    show(scatterpp, "scAtteR++ (stateless + sidecars)")

    print(
        "\nReading the traces:\n"
        " * scAtteR: sift shows up twice per frame — extraction, then\n"
        "   matching's state fetch (the 2x load of §4); lost frames\n"
        "   concentrate right after primary (sift's busy ingress).\n"
        " * scAtteR++: the queue component replaces drops — latency\n"
        "   grows where scAtteR lost frames outright.")


if __name__ == "__main__":
    main()
