#!/usr/bin/env python3
"""The AR pipeline for real: recognize objects in synthetic video.

This example runs the actual computer-vision chain the scAtteR
services split between them — SIFT feature extraction, PCA + Fisher
encoding, LSH nearest-neighbour shortlisting, ratio-test matching and
RANSAC pose — in-process, on frames of the synthetic workplace video
(the stand-in for the paper's pre-recorded smartphone capture).

For each processed frame it prints the recognized objects, their
bounding-box centres against ground truth, and finishes with an ASCII
rendering of the last frame with boxes drawn in.

Run:  python examples/local_pipeline.py
"""

import numpy as np

from repro.vision.dataset import WorkplaceDataset
from repro.vision.recognizer import RecognizerTrainer
from repro.vision.sift import SiftExtractor
from repro.vision.video import SyntheticVideo


def ascii_render(image: np.ndarray, boxes: dict,
                 width: int = 72) -> str:
    """Downsample the frame to ASCII, overlaying box outlines."""
    ramp = " .:-=+*#%@"
    height = int(image.shape[0] / image.shape[1] * width * 0.55)
    ys = np.linspace(0, image.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, image.shape[1] - 1, width).astype(int)
    small = image[np.ix_(ys, xs)]
    chars = [[ramp[int(v * (len(ramp) - 1))] for v in row]
             for row in small]
    for name, corners in boxes.items():
        scale_y = height / image.shape[0]
        scale_x = width / image.shape[1]
        for i in range(4):
            a = corners[i]
            b = corners[(i + 1) % 4]
            steps = int(max(abs(b - a)) * max(scale_x, scale_y)) + 1
            for t in np.linspace(0.0, 1.0, steps):
                x = int((a[0] + t * (b[0] - a[0])) * scale_x)
                y = int((a[1] + t * (b[1] - a[1])) * scale_y)
                if 0 <= y < height and 0 <= x < width:
                    chars[y][x] = name[0].upper()
    return "\n".join("".join(row) for row in chars)


def main() -> None:
    print("Training: extracting reference features, fitting PCA + GMM "
          "vocabulary, indexing Fisher vectors in LSH...")
    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.01,
                              max_keypoints=300)
    recognizer = RecognizerTrainer(seed=0).train(dataset, extractor)

    video = SyntheticVideo(seed=0)
    last_frame = None
    last_boxes = {}
    for index in range(0, video.num_frames, 30):  # one frame per second
        frame = video.frame(index)
        result = recognizer.process_frame(frame.image)
        truth = {p.name: p.corners.mean(axis=0)
                 for p in frame.ground_truth}
        print(f"\nframe {frame.index:3d} (t={frame.timestamp_s:4.1f}s): "
              f"{result.num_keypoints} keypoints")
        for recognition in result.recognitions:
            centre = recognition.corners.mean(axis=0)
            error = np.linalg.norm(centre - truth[recognition.name])
            print(f"  {recognition.name:9s} inliers={recognition.num_inliers:2d} "
                  f"centre=({centre[0]:6.1f},{centre[1]:6.1f}) "
                  f"gt-error={error:4.1f}px")
        last_frame = frame.image
        last_boxes = {r.name: r.corners for r in result.recognitions}

    print("\nLast frame with recognized bounding boxes "
          "(M=monitor, K=keyboard, T=table):\n")
    print(ascii_render(last_frame, last_boxes))


if __name__ == "__main__":
    main()
