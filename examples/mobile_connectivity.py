#!/usr/bin/env python3
"""Mobile access links: AR QoS over emulated LTE / 5G / WiFi-6.

Reproduces Appendix A.1.1's methodology: the pipeline runs on E2 and
``tc netem``-style impairments (delay, loss, 10 ms delay oscillation
with 20% probability for mobility) shape the client links.  Profiles
follow the measurement studies the paper cites: LTE 40 ms RTT / 0.08%
loss, 5G 10 ms / 0.001-0.01% loss, WiFi-6 5 ms.

Run:  python examples/mobile_connectivity.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_scatter_experiment
from repro.net.netem import lte_profile, nr5g_profile, wifi6_profile
from repro.scatter.config import uniform_config

PROFILES = (
    ("ethernet", None),
    ("wifi6", wifi6_profile()),
    ("5g", nr5g_profile()),
    ("lte", lte_profile()),
)


def main() -> None:
    config = uniform_config("E2", "e2")
    rows = []
    for name, netem in PROFILES:
        for clients in (1, 2, 4):
            result = run_scatter_experiment(
                config, num_clients=clients, duration_s=30.0, seed=0,
                client_netem=netem)
            rows.append([name, clients, result.mean_fps(),
                         result.success_rate(), result.mean_e2e_ms(),
                         result.mean_jitter_ms()])
    print(format_table(
        ["access", "clients", "FPS", "success", "E2E(ms)",
         "jitter(ms)"], rows))

    print(
        "\nWhat to look for (paper A.1.1):\n"
        " * Loss dents the frame success rate (one lost fragment of a\n"
        "   ~123-fragment frame loses the frame), but scAtteR has no\n"
        "   latency threshold, so stale frames still count — the\n"
        "   framerate stays consistent across RTTs while E2E latency\n"
        "   absorbs the access delay.\n"
        " * At higher client counts, a lossier link can look slightly\n"
        "   *better*: lost frames never reach the congested services.")


if __name__ == "__main__":
    main()
