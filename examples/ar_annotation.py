#!/usr/bin/env python3
"""Full AR loop: recognize, estimate camera pose, anchor, track.

The closest thing to an actual AR app in this repository: per frame of
the synthetic video it (i) recognizes the workplace objects through
the real CV pipeline, (ii) decomposes each homography into the camera
pose relative to the object's plane, (iii) anchors a virtual
annotation at the centre of every tracked object, stabilized by the
cross-frame tracker through recognition gaps, and (iv) renders the
augmented frame as ASCII.

What to watch: the pose readout (distance, yaw) changes smoothly with
the camera pan, and annotations persist even on frames where raw
recognition misses the object (the tracker coasts them) — the
augmentation stability the paper's FPS metric is a proxy for.

Run:  python examples/ar_annotation.py
"""

import numpy as np

from repro.vision.camera import CameraIntrinsics, decompose_homography
from repro.vision.dataset import WorkplaceDataset
from repro.vision.pose import estimate_homography_ransac
from repro.vision.recognizer import RecognizerTrainer
from repro.vision.sift import SiftExtractor
from repro.vision.tracker import ObjectTracker
from repro.vision.video import SyntheticVideo
from repro.vision.matching import match_descriptors

ANNOTATIONS = {
    "monitor": "status:online",
    "keyboard": "layout:qwerty",
    "table": "asset#1042",
}


def render(image, tracks, notes, width=76):
    ramp = " .:-=+*#%@"
    height = int(image.shape[0] / image.shape[1] * width * 0.55)
    ys = np.linspace(0, image.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, image.shape[1] - 1, width).astype(int)
    chars = [[ramp[int(v * (len(ramp) - 1))] for v in row]
             for row in image[np.ix_(ys, xs)]]
    scale_x = width / image.shape[1]
    scale_y = height / image.shape[0]
    for track in tracks:
        cx, cy = track.centre
        label = notes.get(track.name, track.name)
        marker = ("(" + label + ")")
        x = int(cx * scale_x - len(marker) / 2)
        y = int(cy * scale_y)
        if 0 <= y < height:
            for i, ch in enumerate(marker):
                if 0 <= x + i < width:
                    chars[y][x + i] = ch
    return "\n".join("".join(row) for row in chars)


def main() -> None:
    print("Training the recognizer...")
    dataset = WorkplaceDataset(seed=0)
    extractor = SiftExtractor(contrast_threshold=0.01,
                              max_keypoints=300)
    recognizer = RecognizerTrainer(seed=0).train(dataset, extractor)
    video = SyntheticVideo(seed=0)
    intrinsics = CameraIntrinsics.for_image(video.size)
    tracker = ObjectTracker(min_hits=1, max_misses=6, smoothing=0.7)

    last_frame = None
    last_tracks = []
    for frame_index in range(0, video.num_frames, 15):
        frame = video.frame(frame_index)
        result = recognizer.process_frame(frame.image)
        tracks = tracker.update(frame_index, result.recognitions)
        raw = {r.name for r in result.recognitions}
        coasted = [t.name for t in tracks if t.name not in raw]
        print(f"\nframe {frame_index:3d}: "
              f"recognized={sorted(raw) or '-'} "
              f"coasted={coasted or '-'}")

        # Camera pose per recognized object (planar decomposition).
        keypoints, descriptors = \
            recognizer.extractor.detect_and_describe(frame.image)
        for recognition in result.recognitions:
            reference = recognizer.dataset.objects[recognition.name]
            matches = match_descriptors(descriptors,
                                        reference.descriptors,
                                        ratio=0.85)
            if len(matches) < 6:
                continue
            src = reference.keypoint_coordinates[
                [m.reference_index for m in matches]]
            dst = np.array([[keypoints[m.query_index].x,
                             keypoints[m.query_index].y]
                            for m in matches])
            estimate = estimate_homography_ransac(src, dst,
                                                  threshold=4.0,
                                                  seed=0)
            if estimate is None:
                continue
            pose = decompose_homography(estimate.matrix, intrinsics)
            yaw, pitch, roll = pose.yaw_pitch_roll_degrees
            print(f"  {recognition.name:9s} camera distance="
                  f"{pose.distance:6.1f} (plane units) "
                  f"yaw={yaw:6.1f} deg")
        last_frame, last_tracks = frame.image, tracks

    print("\nAugmented last frame (annotations anchored on tracks):\n")
    print(render(last_frame, last_tracks, ANNOTATIONS))


if __name__ == "__main__":
    main()
